//! The four-stage per-accession pipeline (paper Fig. 1).
//!
//! 1. `prefetch` — download the `.sra` (modeled network time).
//! 2. `fasterq-dump` — convert to FASTQ (real parallel decode, modeled duration).
//! 3. STAR — real alignment with `--quantMode GeneCounts`, optionally guarded by the
//!    early-stopping monitor.
//! 4. Collect — fold the per-gene counts into the Atlas (DESeq2 normalization runs
//!    campaign-wide at the end; see [`crate::orchestrator`]).
//!
//! Stage durations separate *measured* compute (the aligner really runs) from
//! *modeled* time (transfer stages, and a spots-ratio scale-up when the experiment
//! caps generated reads below the catalog's spot counts — the cloud clock then
//! advances as if the full accession had been processed).

use std::sync::Arc;

use crate::early_stop::{EarlyStopAccounting, EarlyStopPolicy};
use crate::AtlasError;
use genomics::Annotation;
use serde::{Deserialize, Serialize};
use sra_sim::accession::LibraryStrategy;
use sra_sim::fasterq_dump::DumpModel;
use sra_sim::prefetch::NetworkModel;
use sra_sim::{FasterqDump, SraRepository};
use star_aligner::quant::GeneCounts;
use star_aligner::runner::{RunConfig, RunStatus, Runner};
use star_aligner::{AlignParams, PhaseWork, StarIndex};

/// Pipeline configuration.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Network model charged by `prefetch`.
    pub network: NetworkModel,
    /// Throughput model charged by `fasterq-dump`.
    pub dump: DumpModel,
    /// Aligner parameters.
    pub align_params: AlignParams,
    /// Run driver configuration (threads, batch size, quant).
    pub run_config: RunConfig,
    /// Early-stopping policy; `None` disables the optimization (the baseline).
    pub early_stop: Option<EarlyStopPolicy>,
    /// Extra multiplier applied to measured alignment seconds when projecting the
    /// cloud clock (1.0 = wall time as measured).
    pub time_scale: f64,
    /// When set, the align stage charges `processed_reads × this` seconds instead
    /// of measured wall time, making campaign clocks bit-reproducible across runs
    /// (required by the chaos-replay tests). `None` charges measured wall time.
    pub align_secs_per_read: Option<f64>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        // The Atlas aligns against *toplevel* assemblies whose unplaced scaffolds
        // duplicate genic sequence, so it runs STAR with an ENCODE-style
        // `--outFilterMultimapNmax 20` instead of the bare default 10 — otherwise
        // legitimately mapped reads on older releases tip into "too many loci".
        let align_params =
            AlignParams { out_filter_multimap_nmax: 20, ..AlignParams::default() };
        PipelineConfig {
            network: NetworkModel::default(),
            dump: DumpModel::default(),
            align_params,
            run_config: RunConfig::default(),
            early_stop: Some(EarlyStopPolicy::default()),
            time_scale: 1.0,
            align_secs_per_read: None,
        }
    }
}

/// Modeled duration of each pipeline stage, in seconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StageTimes {
    /// Stage 1: `prefetch`.
    pub prefetch_secs: f64,
    /// Stage 2: `fasterq-dump`.
    pub dump_secs: f64,
    /// Stage 3: STAR alignment (modeled; see [`PipelineConfig::time_scale`]).
    pub align_secs: f64,
    /// Stage 4: counts collection + result upload.
    pub collect_secs: f64,
}

impl StageTimes {
    /// Number of pipeline stages.
    pub const N_STAGES: usize = 4;

    /// Stage names, in execution order.
    pub const STAGE_NAMES: [&'static str; Self::N_STAGES] =
        ["prefetch", "fasterq-dump", "align", "collect"];

    /// Total pipeline seconds.
    pub fn total(&self) -> f64 {
        self.prefetch_secs + self.dump_secs + self.align_secs + self.collect_secs
    }

    /// Durations as an array, in execution order.
    pub fn as_array(&self) -> [f64; Self::N_STAGES] {
        [self.prefetch_secs, self.dump_secs, self.align_secs, self.collect_secs]
    }

    /// Seconds elapsed before stage `stage` starts (prefix sum; `stage` is an index
    /// into [`Self::STAGE_NAMES`]). Used by fault injection to place worker crashes
    /// at a chosen pipeline stage.
    pub fn prefix_secs(&self, stage: usize) -> f64 {
        assert!(stage < Self::N_STAGES, "stage {stage} out of range");
        self.as_array()[..stage].iter().sum()
    }
}

/// Everything one accession's pipeline run produces.
#[derive(Clone, Debug)]
pub struct PipelineResult {
    /// The accession processed.
    pub accession: String,
    /// Its library strategy (from catalog metadata).
    pub strategy: LibraryStrategy,
    /// Modeled per-stage durations.
    pub stage_secs: StageTimes,
    /// Final mapping rate observed by the aligner.
    pub mapping_rate: f64,
    /// How the alignment ended.
    pub status: RunStatus,
    /// Early-stop time accounting (on modeled alignment seconds).
    pub early_stop: EarlyStopAccounting,
    /// Gene counts (present when quant was enabled and the run completed; aborted
    /// runs discard their partial counts, as the paper's pipeline discards aborted
    /// alignments entirely).
    pub gene_counts: Option<GeneCounts>,
    /// Reads fed to the aligner (after any experiment spot cap).
    pub reads_input: u64,
    /// Wall-clock seconds the alignment actually took on this machine.
    pub measured_align_secs: f64,
    /// Per-phase alignment work units (seed/stitch/extend), used to split the
    /// align span into sub-stages on the telemetry timeline.
    pub phase_work: PhaseWork,
    /// `fasterq-dump` stage attributes (spots, bytes, layout) for telemetry.
    pub dump_attrs: Vec<(&'static str, String)>,
}

impl PipelineResult {
    /// Did early stopping abort this accession?
    pub fn early_stopped(&self) -> bool {
        matches!(self.status, RunStatus::EarlyStopped { .. })
    }

    /// Per-stage `(name, start, end)` offsets from job start, in execution order.
    /// Used to emit stage spans under a job span on the telemetry timeline.
    pub fn stage_spans(&self) -> Vec<(&'static str, f64, f64)> {
        let durations = self.stage_secs.as_array();
        StageTimes::STAGE_NAMES
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let start = self.stage_secs.prefix_secs(i);
                (*name, start, start + durations[i])
            })
            .collect()
    }

    /// Align sub-stage `(name, start, end)` offsets from job start: the align
    /// stage split proportional to the seed/stitch/extend work-unit counts.
    /// Empty when no alignment work was recorded. Boundaries are monotone and
    /// the last end lands exactly on the align stage's end.
    pub fn align_phase_spans(&self) -> Vec<(&'static str, f64, f64)> {
        const ALIGN_STAGE: usize = 2;
        debug_assert_eq!(StageTimes::STAGE_NAMES[ALIGN_STAGE], "align");
        if self.phase_work.total() == 0 || self.stage_secs.align_secs <= 0.0 {
            return Vec::new();
        }
        let start = self.stage_secs.prefix_secs(ALIGN_STAGE);
        let end = start + self.stage_secs.align_secs;
        let (f_seed, f_stitch, _) = self.phase_work.fractions();
        let b1 = (start + self.stage_secs.align_secs * f_seed).min(end);
        let b2 = (start + self.stage_secs.align_secs * (f_seed + f_stitch)).clamp(b1, end);
        vec![("seed", start, b1), ("stitch", b1, b2), ("extend", b2, end)]
    }
}

/// The pipeline bound to a repository, an index, and an annotation.
pub struct AtlasPipeline {
    repo: Arc<SraRepository>,
    index: Arc<StarIndex>,
    annotation: Arc<Annotation>,
    config: PipelineConfig,
}

impl AtlasPipeline {
    /// Assemble a pipeline. Validates the configuration.
    pub fn new(
        repo: Arc<SraRepository>,
        index: Arc<StarIndex>,
        annotation: Arc<Annotation>,
        config: PipelineConfig,
    ) -> Result<AtlasPipeline, AtlasError> {
        config.align_params.validate()?;
        config.run_config.validate()?;
        if let Some(p) = &config.early_stop {
            p.validate()?;
        }
        if config.time_scale <= 0.0 || !config.time_scale.is_finite() {
            return Err(AtlasError::InvalidParams("time_scale must be positive and finite".into()));
        }
        Ok(AtlasPipeline { repo, index, annotation, config })
    }

    /// The configuration in use.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The repository backing stage 1.
    pub fn repository(&self) -> &SraRepository {
        &self.repo
    }

    /// Shared handle to the repository (for building derived pipelines).
    pub fn repository_arc(&self) -> Arc<SraRepository> {
        Arc::clone(&self.repo)
    }

    /// Shared handle to the index.
    pub fn index_arc(&self) -> Arc<StarIndex> {
        Arc::clone(&self.index)
    }

    /// Shared handle to the annotation.
    pub fn annotation_arc(&self) -> Arc<Annotation> {
        Arc::clone(&self.annotation)
    }

    /// Run the full pipeline for one accession.
    pub fn run_accession(&self, accession: &str) -> Result<PipelineResult, AtlasError> {
        self.run_accession_with_history(accession).map(|(result, _)| result)
    }

    /// Like [`AtlasPipeline::run_accession`], also returning the alignment's
    /// progress-snapshot history (the `Log.progress.out` lines) for analysis.
    pub fn run_accession_with_history(
        &self,
        accession: &str,
    ) -> Result<(PipelineResult, Vec<star_aligner::ProgressSnapshot>), AtlasError> {
        let meta = self.repo.meta(accession)?.clone();

        // Stage 1: prefetch. Real archive content; the modeled time charges the
        // catalog-scale file size so spot caps don't shrink the cloud clock.
        let archive = self.repo.fetch(accession)?;
        let prefetch_secs = self.config.network.transfer_secs(meta.sra_size_bytes());

        // Stage 2: fasterq-dump.
        let dump = FasterqDump::new(self.config.dump).run(&archive)?;
        let dump_secs = {
            let rate =
                self.config.dump.bytes_per_sec_per_thread * self.config.dump.threads as f64;
            meta.fastq_size_bytes() as f64 / rate
        };

        // Stage 3: STAR. Early-stopping decisions happen at batch boundaries, so cap
        // the batch size to guarantee ~20 checkpoints per run — otherwise a small
        // (or spot-capped) input could finish inside its first batch and the 10 %
        // checkpoint would never be observable. Paired accessions align as fragments
        // (`run_pairs`), matching how STAR reports paired libraries.
        let n_spots = dump.spots() as usize;
        let mut run_config = self.config.run_config.clone();
        run_config.batch_size = run_config.batch_size.clamp(1, (n_spots / 20).max(50));
        let runner = Runner::new(&self.index, self.config.align_params.clone(), run_config)?;
        let monitor = self.config.early_stop;
        let monitor_dyn =
            monitor.as_ref().map(|p| p as &dyn star_aligner::runner::RunMonitor);
        let output = match dump.pairs() {
            Some(pairs) => {
                runner.run_pairs(&pairs, Some(&self.annotation), monitor_dyn, None)?
            }
            None => runner.run(&dump.reads, Some(&self.annotation), monitor_dyn, None)?,
        };

        // Modeled alignment seconds: measured wall time, scaled for capped spots and
        // any explicit time_scale.
        let spots_ratio = if n_spots == 0 { 1.0 } else { meta.spots as f64 / n_spots as f64 };
        let measured_secs = match self.config.align_secs_per_read {
            Some(per_read) => output.final_snapshot.processed as f64 * per_read,
            None => output.wall_secs,
        };
        let align_secs = measured_secs * spots_ratio * self.config.time_scale;
        let early_stop = EarlyStopAccounting::from_run(&output, align_secs);

        // Stage 4: collect. Charged only for completed runs (aborted pipelines skip
        // the upload and report the abort).
        let completed = matches!(output.status, RunStatus::Completed);
        let collect_secs = if completed {
            // Counts table upload + bookkeeping: latency + size/bandwidth.
            let table_bytes = output
                .gene_counts
                .as_ref()
                .map_or(0, |gc| gc.gene_ids.len() as u64 * 24 + 128);
            self.config.network.transfer_secs(table_bytes)
        } else {
            0.0
        };

        Ok((
            PipelineResult {
                accession: meta.id.clone(),
                strategy: meta.strategy,
                stage_secs: StageTimes { prefetch_secs, dump_secs, align_secs, collect_secs },
                mapping_rate: output.mapped_fraction(),
                status: output.status,
                early_stop,
                gene_counts: if completed { output.gene_counts } else { None },
                reads_input: dump.reads.len() as u64,
                measured_align_secs: output.wall_secs,
                phase_work: output.phase_work,
                dump_attrs: dump.span_attrs(),
            },
            output.history,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genomics::annotation::AnnotationParams;
    use genomics::{EnsemblGenerator, EnsemblParams, Release};
    use sra_sim::accession::CatalogParams;
    use star_aligner::index::IndexParams;

    fn pipeline(early_stop: bool, spot_cap: Option<u64>) -> AtlasPipeline {
        let g = EnsemblGenerator::new(EnsemblParams::tiny()).unwrap();
        let asm = Arc::new(g.generate(Release::R111));
        let ann = Arc::new(Annotation::simulate(&asm, &g, &AnnotationParams::default()).unwrap());
        let idx =
            Arc::new(StarIndex::build(&asm, &ann, &IndexParams::default()).unwrap());
        let mut cat = CatalogParams::default();
        cat.n_accessions = 10;
        cat.bulk_spots_median = 400;
        cat.single_cell_fraction = 0.3;
        let mut repo = SraRepository::new(asm, Arc::clone(&ann), cat.generate().unwrap());
        if let Some(cap) = spot_cap {
            repo = repo.with_spot_cap(cap);
        }
        let mut config = PipelineConfig::default();
        config.run_config.batch_size = 100;
        config.run_config.threads = 2;
        if !early_stop {
            config.early_stop = None;
        }
        AtlasPipeline::new(Arc::new(repo), idx, ann, config).unwrap()
    }

    fn ids_by_strategy(p: &AtlasPipeline, s: LibraryStrategy) -> Vec<String> {
        p.repository()
            .ids()
            .into_iter()
            .filter(|id| p.repository().meta(id).unwrap().strategy == s)
            .collect()
    }

    #[test]
    fn bulk_accession_completes_with_counts() {
        let p = pipeline(true, None);
        let id = &ids_by_strategy(&p, LibraryStrategy::RnaSeqBulk)[0];
        let r = p.run_accession(id).unwrap();
        assert_eq!(r.status, RunStatus::Completed);
        assert!(r.mapping_rate > 0.6, "bulk mapping rate {}", r.mapping_rate);
        assert!(r.gene_counts.is_some());
        assert!(!r.early_stopped());
        assert_eq!(r.early_stop.saved_secs(), 0.0);
        assert!(r.stage_secs.prefetch_secs > 0.0);
        assert!(r.stage_secs.dump_secs > 0.0);
        assert!(r.stage_secs.align_secs > 0.0);
        assert!(r.stage_secs.collect_secs > 0.0);
    }

    #[test]
    fn single_cell_accession_is_early_stopped() {
        let p = pipeline(true, None);
        let id = &ids_by_strategy(&p, LibraryStrategy::SingleCell)[0];
        let r = p.run_accession(id).unwrap();
        assert!(r.early_stopped(), "status {:?}, rate {}", r.status, r.mapping_rate);
        assert!(r.mapping_rate < 0.30);
        assert!(r.gene_counts.is_none(), "aborted runs discard counts");
        assert!(r.early_stop.saved_secs() > 0.0);
        assert_eq!(r.stage_secs.collect_secs, 0.0, "no upload for aborted runs");
        assert!(
            r.early_stop.processed_reads < r.early_stop.total_reads,
            "stopped before the end"
        );
    }

    #[test]
    fn without_policy_single_cell_runs_to_completion() {
        let p = pipeline(false, None);
        let id = &ids_by_strategy(&p, LibraryStrategy::SingleCell)[0];
        let r = p.run_accession(id).unwrap();
        assert_eq!(r.status, RunStatus::Completed);
        assert!(r.mapping_rate < 0.30, "still a bad library, just not aborted");
        assert!(r.gene_counts.is_some());
    }

    #[test]
    fn spot_cap_scales_modeled_align_time_up() {
        let p_capped = pipeline(true, Some(100));
        let id = ids_by_strategy(&p_capped, LibraryStrategy::RnaSeqBulk)
            .into_iter()
            .find(|id| p_capped.repository().meta(id).unwrap().spots > 100)
            .expect("some bulk accession exceeds the cap");
        let spots = p_capped.repository().meta(&id).unwrap().spots;
        let r = p_capped.run_accession(&id).unwrap();
        assert_eq!(r.reads_input, 100);
        let expected_ratio = spots as f64 / 100.0;
        let observed_ratio = r.stage_secs.align_secs / r.measured_align_secs;
        assert!(
            (observed_ratio / expected_ratio - 1.0).abs() < 1e-6,
            "align time must scale by spots ratio: {observed_ratio} vs {expected_ratio}"
        );
    }

    #[test]
    fn prefetch_time_uses_catalog_size_not_capped_size() {
        let p_capped = pipeline(true, Some(100));
        let p_full = pipeline(true, None);
        let id = ids_by_strategy(&p_full, LibraryStrategy::RnaSeqBulk)[0].clone();
        let a = p_capped.run_accession(&id).unwrap();
        let b = p_full.run_accession(&id).unwrap();
        assert!((a.stage_secs.prefetch_secs - b.stage_secs.prefetch_secs).abs() < 1e-9);
        assert!((a.stage_secs.dump_secs - b.stage_secs.dump_secs).abs() < 1e-9);
    }

    #[test]
    fn paired_accession_runs_through_the_pipeline() {
        let g = EnsemblGenerator::new(EnsemblParams::tiny()).unwrap();
        let asm = Arc::new(g.generate(Release::R111));
        let ann = Arc::new(Annotation::simulate(&asm, &g, &AnnotationParams::default()).unwrap());
        let idx = Arc::new(StarIndex::build(&asm, &ann, &IndexParams::default()).unwrap());
        let mut cat = CatalogParams::default();
        cat.n_accessions = 4;
        cat.bulk_spots_median = 300;
        cat.single_cell_fraction = 0.0;
        cat.paired_fraction = 1.0;
        let repo = Arc::new(SraRepository::new(asm, Arc::clone(&ann), cat.generate().unwrap()));
        let mut config = PipelineConfig::default();
        config.run_config.threads = 2;
        let p = AtlasPipeline::new(repo, idx, ann, config).unwrap();
        let id = p.repository().ids()[0].clone();
        let meta = p.repository().meta(&id).unwrap().clone();
        assert_eq!(meta.layout, sra_sim::accession::LibraryLayout::Paired);
        let r = p.run_accession(&id).unwrap();
        assert_eq!(r.status, RunStatus::Completed);
        assert!(r.mapping_rate > 0.6, "paired fragments map well: {}", r.mapping_rate);
        assert!(r.gene_counts.is_some());
        // Progress counted fragments, not individual mates.
        assert_eq!(r.early_stop.total_reads, meta.spots.min(800), "spots (fragments) are the unit");
    }

    #[test]
    fn unknown_accession_errors() {
        let p = pipeline(true, None);
        assert!(p.run_accession("SRRNOPE").is_err());
    }

    #[test]
    fn invalid_config_rejected() {
        let p = pipeline(true, None);
        let repo = Arc::new(SraRepository::new(
            Arc::new(EnsemblGenerator::new(EnsemblParams::tiny()).unwrap().generate(Release::R111)),
            Arc::new(Annotation::default()),
            vec![],
        ));
        let mut config = PipelineConfig::default();
        config.time_scale = 0.0;
        assert!(AtlasPipeline::new(
            repo,
            Arc::new(p.index_for_tests()),
            Arc::new(Annotation::default()),
            config
        )
        .is_err());
    }
}

#[cfg(test)]
impl AtlasPipeline {
    /// Test helper: clone the underlying index.
    fn index_for_tests(&self) -> StarIndex {
        (*self.index).clone()
    }
}
