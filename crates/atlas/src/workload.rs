//! What a campaign runs per accession: the real pipeline, or a modeled stand-in.
//!
//! The orchestrator only needs one thing from the science side: "run this
//! accession, give me a [`PipelineResult`]". [`CampaignWorkload`] captures that
//! seam. [`AtlasPipeline`] implements it by actually aligning; [`ModeledWorkload`]
//! synthesizes results from a seeded hash so fleet-scale campaigns (10⁴–10⁶
//! accessions, thousands of instances — the regime of ROADMAP item 1 and the
//! follow-up papers' cost studies) exercise the *orchestration* layer at full
//! fidelity without paying for 10⁴ real alignments. Orchestration cannot tell the
//! two apart: everything it reads off a result (stage durations, early-stop
//! accounting, phase work) is present either way.

use std::sync::Arc;

use crate::early_stop::EarlyStopAccounting;
use crate::pipeline::{AtlasPipeline, PipelineResult, StageTimes};
use crate::AtlasError;
use sra_sim::accession::LibraryStrategy;
use star_aligner::{PhaseWork, ProgressSnapshot, RunStatus};

/// Per-accession work a campaign schedules onto instances.
pub trait CampaignWorkload: Send + Sync {
    /// Run one accession to a result.
    fn run_accession(&self, accession: &str) -> Result<PipelineResult, AtlasError>;

    /// Run one accession, also returning its progress history (for live-monitor
    /// campaigns). Implementations without real progress return an empty history.
    fn run_accession_with_history(
        &self,
        accession: &str,
    ) -> Result<(PipelineResult, Vec<ProgressSnapshot>), AtlasError>;
}

impl CampaignWorkload for AtlasPipeline {
    fn run_accession(&self, accession: &str) -> Result<PipelineResult, AtlasError> {
        AtlasPipeline::run_accession(self, accession)
    }

    fn run_accession_with_history(
        &self,
        accession: &str,
    ) -> Result<(PipelineResult, Vec<ProgressSnapshot>), AtlasError> {
        AtlasPipeline::run_accession_with_history(self, accession)
    }
}

/// A seeded synthetic workload: per-accession results are a pure function of
/// `(seed, accession)`, so campaigns over it are exactly as deterministic and
/// replayable as real ones — just free. Durations are drawn from a spread around
/// the configured means; a fixed fraction of accessions early-stop (single-cell
/// contamination, per the paper ~25 %) with the paper's shape: stop at ~10 % of
/// reads, projecting the full-run time the abort saved.
#[derive(Clone, Debug)]
pub struct ModeledWorkload {
    /// Seed for all per-accession draws.
    pub seed: u64,
    /// Mean seconds of the align stage (dominates the job).
    pub mean_align_secs: f64,
    /// Fraction of accessions that early-stop, in `[0, 1]`.
    pub early_stop_fraction: f64,
    /// Modeled reads per accession (scales per-accession only via the hash).
    pub mean_reads: u64,
}

impl Default for ModeledWorkload {
    fn default() -> Self {
        ModeledWorkload {
            seed: 0x5EED,
            mean_align_secs: 600.0,
            early_stop_fraction: 0.25,
            mean_reads: 1_000_000,
        }
    }
}

impl ModeledWorkload {
    /// Wrap in the `Arc<dyn CampaignWorkload>` the orchestrator takes.
    pub fn into_workload(self) -> Arc<dyn CampaignWorkload> {
        Arc::new(self)
    }

    /// `n` synthetic SRA-style accession ids (`SRR90000000`…), the id space the
    /// fleet benches and differential tests use.
    pub fn accessions(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("SRR{:08}", 90_000_000 + i)).collect()
    }

    /// A unit draw in `[0, 1)` from stream `stream` of this accession (SplitMix64,
    /// the same generator the fault injector uses).
    fn unit(&self, accession: &str, stream: u64) -> f64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.seed.rotate_left(17) ^ stream;
        for &b in accession.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut z = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z = z ^ (z >> 31);
        (z >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl CampaignWorkload for ModeledWorkload {
    fn run_accession(&self, accession: &str) -> Result<PipelineResult, AtlasError> {
        // Durations spread ±50% around the means, per stream.
        let spread = |mean: f64, u: f64| mean * (0.5 + u);
        let reads = (self.mean_reads as f64 * (0.5 + self.unit(accession, 1))) as u64;
        let full_align = spread(self.mean_align_secs, self.unit(accession, 2));
        let stops = self.unit(accession, 3) < self.early_stop_fraction;
        // Early stops abort at ~10-15% of reads with a sub-threshold mapping rate;
        // completions map well.
        let (status, strategy, mapping_rate, align_secs, processed) = if stops {
            let frac = 0.10 + 0.05 * self.unit(accession, 4);
            let processed = (reads as f64 * frac) as u64;
            (
                RunStatus::EarlyStopped { processed_reads: processed },
                LibraryStrategy::SingleCell,
                0.05 + 0.20 * self.unit(accession, 5),
                full_align * frac,
                processed,
            )
        } else {
            (
                RunStatus::Completed,
                LibraryStrategy::RnaSeqBulk,
                0.70 + 0.25 * self.unit(accession, 5),
                full_align,
                reads,
            )
        };
        let stage_secs = StageTimes {
            prefetch_secs: spread(self.mean_align_secs * 0.05, self.unit(accession, 6)),
            dump_secs: spread(self.mean_align_secs * 0.15, self.unit(accession, 7)),
            align_secs,
            collect_secs: spread(self.mean_align_secs * 0.02, self.unit(accession, 8)),
        };
        let early_stop = EarlyStopAccounting {
            stopped: stops,
            processed_reads: processed,
            total_reads: reads,
            actual_secs: align_secs,
            projected_full_secs: full_align,
        };
        // Phase units in rough STAR proportions, derived from the same streams.
        let phase_work = PhaseWork {
            seed_units: processed * 2,
            stitch_units: processed,
            extend_units: processed + (self.unit(accession, 9) * processed as f64) as u64,
            ..PhaseWork::default()
        };
        Ok(PipelineResult {
            accession: accession.to_string(),
            strategy,
            stage_secs,
            mapping_rate,
            status,
            early_stop,
            // No counts: fleet-scale campaigns skip the DESeq2 step (normalized
            // stays None), which is the point — orchestration, not science.
            gene_counts: None,
            reads_input: reads,
            measured_align_secs: 0.0,
            phase_work,
            dump_attrs: Vec::new(),
        })
    }

    fn run_accession_with_history(
        &self,
        accession: &str,
    ) -> Result<(PipelineResult, Vec<ProgressSnapshot>), AtlasError> {
        let result = self.run_accession(accession)?;
        // Synthesize a handful of progress lines consistent with the result, so
        // monitor-on campaigns emit the same event kinds as real ones.
        let total = result.reads_input;
        let processed_final = match result.status {
            RunStatus::EarlyStopped { processed_reads } => processed_reads,
            _ => total,
        }
        .max(1);
        let history = (1..=4u64)
            .map(|k| {
                let processed = processed_final * k / 4;
                let mapped = (processed as f64 * result.mapping_rate) as u64;
                ProgressSnapshot {
                    total_reads: total,
                    processed,
                    unique: mapped * 4 / 5,
                    multi: mapped / 5,
                    too_many: 0,
                    unmapped: processed - mapped,
                    elapsed_secs: 0.0,
                }
            })
            .collect();
        Ok((result, history))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modeled_results_are_deterministic_and_seed_sensitive() {
        let w = ModeledWorkload::default();
        let a = w.run_accession("SRR90000001").unwrap();
        let b = w.run_accession("SRR90000001").unwrap();
        assert_eq!(a.stage_secs.total(), b.stage_secs.total());
        assert_eq!(a.mapping_rate, b.mapping_rate);
        let other_seed = ModeledWorkload { seed: 7, ..ModeledWorkload::default() };
        let c = other_seed.run_accession("SRR90000001").unwrap();
        assert_ne!(a.stage_secs.total(), c.stage_secs.total());
    }

    #[test]
    fn early_stop_fraction_is_roughly_honored() {
        let w = ModeledWorkload::default();
        let ids = ModeledWorkload::accessions(400);
        let stopped = ids.iter().filter(|a| w.run_accession(a).unwrap().early_stopped()).count();
        assert!((60..=140).contains(&stopped), "~25% of 400, got {stopped}");
    }

    #[test]
    fn history_is_consistent_with_the_result() {
        let w = ModeledWorkload::default();
        for a in ModeledWorkload::accessions(20) {
            let (r, h) = w.run_accession_with_history(&a).unwrap();
            assert!(!h.is_empty());
            let last = h.last().unwrap();
            assert!(last.processed <= r.reads_input);
            assert!(last.processed_fraction() <= 1.0);
        }
    }
}
