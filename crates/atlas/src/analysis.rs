//! Progress-log analysis — the methodology behind the paper's early-stopping rule.
//!
//! §III-B: *"By analyzing 1000 of Log.progress.out files we identified that
//! processing at least 10 % of the total number of reads is enough to decide whether
//! the alignment should be continued"*. This module reproduces that analysis: align a
//! catalog **without** early stopping while recording each run's progress history
//! (the `Log.progress.out` lines), then replay every candidate `(checkpoint
//! fraction, threshold)` policy over the recorded histories to measure
//!
//! * how many runs each policy would stop,
//! * how many of those stops are *false* (runs that end above the threshold —
//!   alignments the Atlas actually wanted), and
//! * the compute it would save,
//!
//! and report the smallest checkpoint fraction with zero false stops — the
//! data-driven justification for the paper's 10 %.

use crate::pipeline::{AtlasPipeline, PipelineConfig};
use crate::AtlasError;
use serde::{Deserialize, Serialize};
use star_aligner::progress::ProgressSnapshot;

/// One run's recorded progress history plus its final outcome.
#[derive(Clone, Debug)]
pub struct RunTrace {
    /// Accession id.
    pub accession: String,
    /// True when the library is single-cell (ground truth from the catalog).
    pub single_cell: bool,
    /// Final mapping rate of the *complete* run.
    pub final_mapping_rate: f64,
    /// Progress snapshots at batch boundaries (the Log.progress.out lines).
    pub history: Vec<ProgressSnapshot>,
    /// Full-run alignment seconds (modeled scale).
    pub full_secs: f64,
}

/// Verdict of replaying one policy over one trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Replay {
    /// Fraction of the run processed when the policy fired (1.0 = never fired).
    pub stopped_at_fraction: f64,
    /// Did the policy abort the run?
    pub stopped: bool,
}

/// Replay a `(check_fraction, min_rate)` policy over a recorded history.
pub fn replay_policy(trace: &RunTrace, check_fraction: f64, min_rate: f64) -> Replay {
    for snap in &trace.history {
        if snap.processed_fraction() >= check_fraction {
            if snap.mapped_fraction() < min_rate {
                return Replay { stopped_at_fraction: snap.processed_fraction(), stopped: true };
            }
            // STAR's progress file keeps updating; the paper's rule decides at the
            // first checkpoint at/after the fraction. One decision per run.
            return Replay { stopped_at_fraction: 1.0, stopped: false };
        }
    }
    Replay { stopped_at_fraction: 1.0, stopped: false }
}

/// Aggregated outcome of one candidate policy over all traces.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PolicyOutcome {
    /// Checkpoint fraction evaluated.
    pub check_fraction: f64,
    /// Mapping-rate threshold evaluated.
    pub min_rate: f64,
    /// Runs the policy stops.
    pub stopped: usize,
    /// Stops of runs whose final mapping rate is ≥ the threshold (wrongly killed).
    pub false_stops: usize,
    /// Fraction of total alignment seconds saved.
    pub saved_fraction: f64,
}

/// Replay a policy over every trace and aggregate.
pub fn evaluate_policy(traces: &[RunTrace], check_fraction: f64, min_rate: f64) -> PolicyOutcome {
    let mut stopped = 0usize;
    let mut false_stops = 0usize;
    let mut total = 0.0f64;
    let mut spent = 0.0f64;
    for trace in traces {
        total += trace.full_secs;
        let replay = replay_policy(trace, check_fraction, min_rate);
        if replay.stopped {
            stopped += 1;
            spent += trace.full_secs * replay.stopped_at_fraction;
            if trace.final_mapping_rate >= min_rate {
                false_stops += 1;
            }
        } else {
            spent += trace.full_secs;
        }
    }
    PolicyOutcome {
        check_fraction,
        min_rate,
        stopped,
        false_stops,
        saved_fraction: if total > 0.0 { (total - spent) / total } else { 0.0 },
    }
}

/// Full analysis: a grid of checkpoint fractions at one threshold.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CheckpointAnalysis {
    /// The threshold analyzed (paper: 0.30).
    pub min_rate: f64,
    /// One outcome per candidate checkpoint fraction, ascending.
    pub outcomes: Vec<PolicyOutcome>,
    /// Number of traces analyzed.
    pub n_traces: usize,
}

impl CheckpointAnalysis {
    /// The smallest checkpoint fraction with zero false stops — the paper's "at
    /// least 10 %" claim, derived from data. `None` when every fraction misfires.
    pub fn minimal_safe_fraction(&self) -> Option<f64> {
        self.outcomes.iter().find(|o| o.false_stops == 0).map(|o| o.check_fraction)
    }
}

/// Record complete-run traces for every accession of the pipeline's repository.
///
/// The pipeline's early stopping is disabled for the recording (the paper likewise
/// analyzed *complete* progress files).
pub fn record_traces(pipeline: &AtlasPipeline) -> Result<Vec<RunTrace>, AtlasError> {
    record_traces_impl(pipeline)
}

fn record_traces_impl(pipeline: &AtlasPipeline) -> Result<Vec<RunTrace>, AtlasError> {
    // Rebuild a policy-free pipeline over the same substrate.
    let config = PipelineConfig { early_stop: None, ..pipeline.config().clone() };
    let free = AtlasPipeline::new(
        pipeline.repository_arc(),
        pipeline.index_arc(),
        pipeline.annotation_arc(),
        config,
    )?;
    let mut traces = Vec::new();
    for id in free.repository().ids() {
        let meta = free.repository().meta(&id)?.clone();
        let (result, history) = free.run_accession_with_history(&id)?;
        traces.push(RunTrace {
            accession: id,
            single_cell: meta.strategy == sra_sim::accession::LibraryStrategy::SingleCell,
            final_mapping_rate: result.mapping_rate,
            history,
            full_secs: result.stage_secs.align_secs,
        });
    }
    Ok(traces)
}

/// Run the checkpoint-fraction analysis over a grid.
pub fn analyze_checkpoints(
    traces: &[RunTrace],
    fractions: &[f64],
    min_rate: f64,
) -> CheckpointAnalysis {
    let mut outcomes: Vec<PolicyOutcome> =
        fractions.iter().map(|&f| evaluate_policy(traces, f, min_rate)).collect();
    outcomes.sort_by(|a, b| a.check_fraction.partial_cmp(&b.check_fraction).expect("finite"));
    CheckpointAnalysis { min_rate, outcomes, n_traces: traces.len() }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(processed: u64, total: u64, mapped: u64) -> ProgressSnapshot {
        ProgressSnapshot {
            total_reads: total,
            processed,
            unique: mapped,
            multi: 0,
            too_many: 0,
            unmapped: processed - mapped,
            elapsed_secs: processed as f64 / 100.0,
        }
    }

    /// A trace whose mapping rate starts at `early` and converges to `late`.
    fn trace(name: &str, early: f64, late: f64, single_cell: bool) -> RunTrace {
        let total = 1000u64;
        let history = (1..=10)
            .map(|i| {
                let processed = i * 100;
                // Linear drift from early to late rate.
                let rate = early + (late - early) * (i as f64 / 10.0);
                snap(processed, total, (processed as f64 * rate) as u64)
            })
            .collect();
        RunTrace {
            accession: name.into(),
            single_cell,
            final_mapping_rate: late,
            history,
            full_secs: 100.0,
        }
    }

    #[test]
    fn replay_stops_bad_runs_at_the_checkpoint() {
        let t = trace("sc", 0.15, 0.2, true);
        let r = replay_policy(&t, 0.10, 0.30);
        assert!(r.stopped);
        assert!((r.stopped_at_fraction - 0.1).abs() < 1e-9);
        // Good run is never stopped.
        let g = trace("bulk", 0.9, 0.93, false);
        assert!(!replay_policy(&g, 0.10, 0.30).stopped);
    }

    #[test]
    fn early_checkpoints_misfire_on_slow_starters() {
        // A run that starts at 20% mapped but finishes at 90%: a 10% checkpoint
        // wrongly kills it, a 50% checkpoint does not.
        let slow = trace("slow", 0.10, 0.90, false);
        let early = replay_policy(&slow, 0.10, 0.30);
        assert!(early.stopped, "interim rate at 10% is ~0.18 < 0.30");
        let later = replay_policy(&slow, 0.60, 0.30);
        assert!(!later.stopped, "interim rate at 60% is ~0.58");
    }

    #[test]
    fn evaluate_policy_counts_false_stops_and_savings() {
        let traces = vec![
            trace("sc1", 0.15, 0.2, true),
            trace("sc2", 0.18, 0.22, true),
            trace("bulk", 0.9, 0.93, false),
        ];
        let o = evaluate_policy(&traces, 0.10, 0.30);
        assert_eq!(o.stopped, 2);
        assert_eq!(o.false_stops, 0);
        // Two of three 100s runs stopped at 10%: saved 180 of 300 = 60%.
        assert!((o.saved_fraction - 0.6).abs() < 1e-9);
    }

    #[test]
    fn minimal_safe_fraction_finds_the_knee() {
        let traces = vec![
            trace("slow-starter", 0.10, 0.90, false), // needs a late checkpoint
            trace("sc", 0.15, 0.20, true),
            trace("bulk", 0.90, 0.93, false),
        ];
        let analysis = analyze_checkpoints(&traces, &[0.05, 0.10, 0.30, 0.60], 0.30);
        // The slow starter's interim rate is 0.14 at 5% and 0.18 at 10% (false
        // stops), but recovers to 0.34 by the 30% checkpoint.
        assert_eq!(analysis.minimal_safe_fraction(), Some(0.30));
        assert_eq!(analysis.outcomes.len(), 4);
        assert!(analysis.outcomes[0].false_stops > 0, "5% checkpoint misfires");
        assert!(analysis.outcomes[1].false_stops > 0, "10% checkpoint misfires");
        assert_eq!(analysis.outcomes[3].false_stops, 0, "60% checkpoint is safe too");
        // Later checkpoints save less.
        assert!(analysis.outcomes[2].saved_fraction > analysis.outcomes[3].saved_fraction);
    }

    #[test]
    fn empty_traces_are_harmless() {
        let analysis = analyze_checkpoints(&[], &[0.1], 0.3);
        assert_eq!(analysis.n_traces, 0);
        assert_eq!(analysis.outcomes[0].stopped, 0);
        assert_eq!(analysis.outcomes[0].saved_fraction, 0.0);
    }
}
