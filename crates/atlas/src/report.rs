//! Human-readable rendering of experiment results (the tables the `experiments`
//! binary prints and EXPERIMENTS.md quotes).

use crate::analysis::CheckpointAnalysis;
use crate::experiments::{
    Fig3Result, Fig4Result, HashTradeoffResult, IndexComparison, PseudoStudyResult,
    RightSizeComparison, SpotRecoveryArm, SpotRecoveryResult,
};
use crate::orchestrator::CampaignReport;
use std::fmt::Write as _;

/// Render the Fig. 3 table: per-file times on both indices plus the headline.
pub fn render_fig3(r: &Fig3Result) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Fig. 3 — STAR execution time by genome release");
    let _ = writeln!(
        out,
        "{:<10} {:>9} {:>12} {:>11} {:>11} {:>8} {:>9} {:>9}",
        "file", "reads", "fastq_bytes", "t_r108[s]", "t_r111[s]", "speedup", "map%108", "map%111"
    );
    for f in &r.files {
        let _ = writeln!(
            out,
            "{:<10} {:>9} {:>12} {:>11.3} {:>11.3} {:>8.1} {:>8.1}% {:>8.1}%",
            f.name,
            f.reads,
            f.fastq_bytes,
            f.secs_108,
            f.secs_111,
            f.speedup(),
            f.rate_108 * 100.0,
            f.rate_111 * 100.0
        );
    }
    let _ = writeln!(
        out,
        "weighted mean speedup (by FASTQ size): {:.1}x   (paper: >12x)",
        r.weighted_speedup
    );
    let _ = writeln!(
        out,
        "mean |mapping-rate difference|: {:.2}%   (paper: <1%)",
        r.mean_rate_diff * 100.0
    );
    let _ = writeln!(
        out,
        "index bytes: r108 {} vs r111 {} (ratio {:.2}; paper 85 GiB vs 29.5 GiB = 2.88)",
        r.stats_108.total_bytes(),
        r.stats_111.total_bytes(),
        r.stats_108.total_bytes() as f64 / r.stats_111.total_bytes() as f64
    );
    out
}

/// Render the §III-A configuration table.
pub fn render_index_table(c: &IndexComparison) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "§III-A — index comparison (test configuration table)");
    let _ = writeln!(out, "{:<28} {:>14} {:>14}", "", "release 108", "release 111");
    let _ = writeln!(
        out,
        "{:<28} {:>14} {:>14}",
        "genome length [bases]", c.stats_108.genome_len, c.stats_111.genome_len
    );
    let _ = writeln!(out, "{:<28} {:>14} {:>14}", "contigs", c.stats_108.n_contigs, c.stats_111.n_contigs);
    let _ = writeln!(
        out,
        "{:<28} {:>14} {:>14}",
        "index bytes (measured)",
        c.stats_108.total_bytes(),
        c.stats_111.total_bytes()
    );
    let _ = writeln!(
        out,
        "{:<28} {:>13.1}G {:>13.1}G",
        "projected human-scale index", c.projected_gib_108, c.projected_gib_111
    );
    let _ = writeln!(out, "{:<28} {:>14} {:>14}", "right-sized instance", c.instance_108, c.instance_111);
    let _ = writeln!(out, "size ratio 108/111: {:.2}  (paper: 85/29.5 = 2.88)", c.size_ratio);
    out
}

/// Render the hash-seeding index-size/speed tradeoff table.
pub fn render_hash_tradeoff(r: &HashTradeoffResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Hash-seeding tradeoff — table bytes vs seed-collection speedup");
    let _ = writeln!(
        out,
        "suffix-array path: {:.0} ns/read over {} reads; serialized index {} bytes",
        r.sa_ns_per_read, r.n_reads, r.index_bytes
    );
    let _ = writeln!(
        out,
        "{:>3} {:>16} {:>14} {:>10} {:>12} {:>8}",
        "s", "distinct s-mers", "table bytes", "vs index", "ns/read", "speedup"
    );
    for row in &r.rows {
        let _ = writeln!(
            out,
            "{:>3} {:>16} {:>14} {:>9.2}x {:>12.0} {:>7.2}x",
            row.seed_len,
            row.distinct_seeds,
            row.table_bytes,
            row.bytes_vs_index,
            row.hash_ns_per_read,
            row.speedup
        );
    }
    out
}

/// Render the Fig. 4 summary and the savings bars for stopped runs.
pub fn render_fig4(r: &Fig4Result) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Fig. 4 — early stopping savings");
    let _ = writeln!(
        out,
        "{:<12} {:>11} {:>13} {:>11} {:>8}",
        "accession", "actual[s]", "projected[s]", "saved[s]", "map%"
    );
    for run in r.runs.iter().filter(|x| x.stopped) {
        let _ = writeln!(
            out,
            "{:<12} {:>11.2} {:>13.2} {:>11.2} {:>7.1}%",
            run.accession,
            run.actual_secs,
            run.projected_secs,
            run.projected_secs - run.actual_secs,
            run.mapping_rate * 100.0
        );
    }
    let s = &r.summary;
    let _ = writeln!(
        out,
        "terminated early: {} of {} alignments  (paper: 38 of 1000)",
        s.stopped, s.runs
    );
    let _ = writeln!(
        out,
        "total STAR time: {:.1}s of projected {:.1}s — saved {:.1}s = {:.1}%  (paper: 30.4h of 155.8h = 19.5%)",
        s.actual_secs,
        s.projected_secs,
        s.saved_secs(),
        s.saved_fraction() * 100.0
    );
    let _ = writeln!(out, "all stopped runs single-cell: {}  (paper: yes)", r.stopped_all_single_cell());
    out
}

/// Render the checkpoint analysis (the paper's "10% is enough" methodology).
pub fn render_checkpoint_analysis(a: &CheckpointAnalysis) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Checkpoint analysis over {} complete progress histories (threshold {:.0}% mapped)",
        a.n_traces,
        a.min_rate * 100.0
    );
    let _ = writeln!(out, "{:>11} {:>9} {:>12} {:>10}", "checkpoint", "stopped", "false stops", "saved");
    for o in &a.outcomes {
        let _ = writeln!(
            out,
            "{:>10.0}% {:>9} {:>12} {:>9.1}%",
            o.check_fraction * 100.0,
            o.stopped,
            o.false_stops,
            o.saved_fraction * 100.0
        );
    }
    match a.minimal_safe_fraction() {
        Some(f) => {
            let _ = writeln!(
                out,
                "minimal safe checkpoint: {:.0}% of reads  (paper: \"at least 10%\" is enough)",
                f * 100.0
            );
        }
        None => {
            let _ = writeln!(out, "no candidate checkpoint is free of false stops");
        }
    }
    out
}

/// Render a campaign report (E4).
pub fn render_campaign(r: &CampaignReport, instance: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Cloud campaign (architecture of Fig. 2)");
    let _ = writeln!(out, "instance type:        {instance}");
    let _ = writeln!(out, "accessions processed: {}", r.completed.len());
    let _ = writeln!(out, "makespan:             {}", r.makespan);
    let _ = writeln!(out, "instances launched:   {}", r.instances_launched);
    let _ = writeln!(out, "spot interruptions:   {}", r.interruptions);
    let _ = writeln!(out, "redeliveries:         {}", r.redeliveries);
    let _ = writeln!(out, "init per instance:    {:.1}s (index download + shm load)", r.init_secs_per_instance);
    let _ = writeln!(out, "total cost:           ${:.2}", r.cost.total_usd);
    let _ = writeln!(out, "instance hours:       {:.2}", r.cost.total_hours);
    let _ = writeln!(
        out,
        "early stopping:       {} of {} stopped, saved {:.1}% of alignment time",
        r.savings.stopped,
        r.savings.runs,
        r.savings.saved_fraction() * 100.0
    );
    if let Some(n) = &r.normalized {
        let _ = writeln!(
            out,
            "atlas matrix:         {} genes x {} samples (DESeq2-normalized)",
            n.gene_ids.len(),
            n.sample_ids.len()
        );
    }
    let peak = r.fleet_timeline.iter().map(|s| s.active_instances).max().unwrap_or(0);
    let _ = writeln!(out, "peak fleet size:      {peak}");
    let _ = writeln!(
        out,
        "mean fleet size:      {:.2} (busy fraction {:.0}%)",
        r.mean_fleet_size,
        r.busy_fraction * 100.0
    );
    let c = &r.fault_counters;
    if c.total_faults() > 0 || !r.dead_lettered.is_empty() {
        let _ = writeln!(
            out,
            "injected faults:      {} (s3 {}, sqs {}, dup deliveries {}, crashes {})",
            c.total_faults(),
            c.s3_get_faults + c.s3_put_faults,
            c.sqs_receive_faults + c.sqs_delete_faults + c.sqs_extend_faults,
            c.duplicate_deliveries,
            c.worker_crashes
        );
        let _ = writeln!(
            out,
            "retries:              {} attempts, {} exhausted, {:.1}s backoff",
            c.retry_attempts, c.retries_exhausted, c.retry_backoff_secs
        );
        let _ = writeln!(
            out,
            "dead-lettered:        {} ({})",
            r.dead_lettered.len(),
            if r.dead_lettered.is_empty() { "-".to_string() } else { r.dead_lettered.join(", ") }
        );
        let _ = writeln!(
            out,
            "wasted compute:       {:.1}s = ${:.2} ({:.1}% of spend; {} duplicate completions)",
            r.wasted_compute_secs,
            r.cost.wasted_usd,
            r.cost.wasted_fraction() * 100.0,
            r.duplicate_completions
        );
    }
    if let Some(t) = &r.telemetry {
        out.push_str(&t.render());
    }
    if !r.alerts.is_empty() {
        let _ = writeln!(out, "live alerts fired:    {}", r.alerts.len());
        for a in &r.alerts {
            let _ = writeln!(
                out,
                "  [{:>9.1}s] {:<20} {:<14} value {:.3} vs {:.3} (detection latency {:.1}s)",
                a.at_secs, a.rule, a.subject, a.value, a.threshold, a.latency_secs
            );
        }
    }
    if let Some(slo) = &r.slo {
        let _ = writeln!(out, "service-level objectives:");
        for o in &slo.objectives {
            let _ = writeln!(
                out,
                "  {:<28} target {:>5.1}% attained {:>6.2}% ({}/{} bad, budget {:>6.1}%, {} burn alerts)",
                o.id,
                o.target * 100.0,
                o.attained * 100.0,
                o.bad,
                o.total,
                o.budget_remaining * 100.0,
                o.burn_alerts
            );
        }
        let t = &slo.totals;
        let _ = writeln!(
            out,
            "attribution ledger:   {} accessions, turnaround sum {:.1}s, ${:.2} attributed",
            t.accessions, t.turnaround_secs, t.cost_usd
        );
        let _ = writeln!(
            out,
            "  latency parts:      queue {:.1}s, download {:.1}s, align {:.1}s, collect {:.1}s, retry {:.1}s, idle {:.1}s",
            t.queue_wait_secs,
            t.download_secs,
            t.align_secs,
            t.collect_secs,
            t.retry_waste_secs,
            t.idle_gap_secs
        );
        let _ = writeln!(
            out,
            "  cost parts:         compute ${:.2}, retry ${:.2}, idle-amortized ${:.2}",
            t.compute_usd, t.retry_usd, t.idle_amortized_usd
        );
    }
    out
}

/// Render the E6 pseudoaligner future-work study.
pub fn render_pseudo_study(r: &PseudoStudyResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "E6 — future work: early stopping on a kallisto/Salmon-style pseudoaligner");
    let _ = writeln!(
        out,
        "pseudoalignment rates: bulk {:.1}%, single-cell {:.1}% (threshold 30%)",
        r.bulk_rate * 100.0,
        r.single_cell_rate * 100.0
    );
    let _ = writeln!(out, "{:<32} {:>9} {:>13}", "", "stopped", "time saved");
    let _ = writeln!(
        out,
        "{:<32} {:>9} {:>12.1}%",
        "with progress stream (proposed)",
        r.with_progress.stopped,
        r.with_progress.saved_fraction() * 100.0
    );
    let _ = writeln!(
        out,
        "{:<32} {:>9} {:>12.1}%",
        "stock mode (no progress; Salmon)",
        r.stock.stopped,
        r.stock.saved_fraction() * 100.0
    );
    let _ = writeln!(
        out,
        "paper: \"other (pseudo)aligners should also provide the current mapping rate value\""
    );
    out
}

/// Render the E5 right-sizing cost comparison.
pub fn render_right_size(c: &RightSizeComparison) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "E5 — fleet cost: release-108 index vs release-111 index");
    let _ = writeln!(out, "{:<24} {:>14} {:>14}", "", "release 108", "release 111");
    let _ = writeln!(out, "{:<24} {:>14} {:>14}", "instance type", c.instance_108, c.instance_111);
    let _ = writeln!(
        out,
        "{:<24} {:>14} {:>14}",
        "makespan",
        c.report_108.makespan.to_string(),
        c.report_111.makespan.to_string()
    );
    let _ = writeln!(
        out,
        "{:<24} {:>13.2}$ {:>13.2}$",
        "total cost", c.report_108.cost.total_usd, c.report_111.cost.total_usd
    );
    let _ = writeln!(
        out,
        "{:<24} {:>13.1}s {:>13.1}s",
        "init per instance", c.report_108.init_secs_per_instance, c.report_111.init_secs_per_instance
    );
    let _ = writeln!(out, "cost ratio 108/111: {:.1}x", c.cost_ratio());
    out
}

/// Render the spot-recovery study (E7): the same reclaim storm with and without
/// checkpoint/resume, priced by the attribution ledger — the Fig. 4-style waste
/// chart for graceful degradation.
pub fn render_spot_recovery(r: &SpotRecoveryResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "E7 — graceful spot degradation: checkpointing under a reclaim storm");
    let _ = writeln!(out, "{:<24} {:>14} {:>14}", "", "recovery off", "recovery on");
    let row = |out: &mut String, label: &str, f: &dyn Fn(&SpotRecoveryArm) -> String| {
        let _ = writeln!(
            out,
            "{:<24} {:>14} {:>14}",
            label,
            f(&r.without_recovery),
            f(&r.with_recovery)
        );
    };
    row(&mut out, "interruptions", &|a| a.interruptions.to_string());
    row(&mut out, "completed", &|a| a.completed.to_string());
    row(&mut out, "dead-lettered", &|a| a.dead_lettered.to_string());
    row(&mut out, "makespan", &|a| format!("{:.0}s", a.makespan_secs));
    row(&mut out, "total cost", &|a| format!("${:.2}", a.total_usd));
    row(&mut out, "retry waste", &|a| format!("{:.0}s", a.retry_waste_secs));
    row(&mut out, "idle gap", &|a| format!("{:.0}s", a.idle_gap_secs));
    row(&mut out, "burned (waste+gap)", &|a| {
        format!("{:.0}s", a.retry_waste_secs + a.idle_gap_secs)
    });
    row(&mut out, "salvaged compute", &|a| format!("{:.0}s", a.salvaged_secs));
    row(&mut out, "checkpoints written", &|a| a.checkpoints_written.to_string());
    row(&mut out, "resumed attempts", &|a| a.resumes.to_string());
    let _ = writeln!(
        out,
        "waste reduction: {:.1}% of burned time recovered by checkpoint/resume",
        r.waste_reduction_fraction() * 100.0
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::early_stop::SavingsSummary;
    use crate::experiments::{Fig3File, Fig4Run};
    use sra_sim::accession::LibraryStrategy;
    use star_aligner::IndexStats;

    fn stats(total: usize) -> IndexStats {
        IndexStats {
            genome_bytes: total / 5,
            sa_bytes: total * 4 / 5,
            prefix_bytes: 0,
            sjdb_bytes: 0,
            genome_len: total / 5,
            n_contigs: 3,
        }
    }

    #[test]
    fn fig3_rendering_contains_headline() {
        let r = Fig3Result {
            files: vec![Fig3File {
                name: "fastq_00".into(),
                reads: 100,
                fastq_bytes: 1000,
                secs_108: 10.0,
                secs_111: 1.0,
                rate_108: 0.9,
                rate_111: 0.91,
            }],
            weighted_speedup: 10.0,
            stats_108: stats(1000),
            stats_111: stats(400),
            mean_rate_diff: 0.01,
        };
        let text = render_fig3(&r);
        assert!(text.contains("weighted mean speedup"));
        assert!(text.contains("10.0x"));
        assert!(text.contains("fastq_00"));
    }

    #[test]
    fn fig4_rendering_reports_totals() {
        let mut summary = SavingsSummary::default();
        let runs = vec![
            Fig4Run {
                accession: "SRR1".into(),
                strategy: LibraryStrategy::SingleCell,
                stopped: true,
                actual_secs: 1.0,
                projected_secs: 10.0,
                mapping_rate: 0.1,
            },
            Fig4Run {
                accession: "SRR2".into(),
                strategy: LibraryStrategy::RnaSeqBulk,
                stopped: false,
                actual_secs: 5.0,
                projected_secs: 5.0,
                mapping_rate: 0.9,
            },
        ];
        for r in &runs {
            summary.add(&crate::early_stop::EarlyStopAccounting {
                stopped: r.stopped,
                processed_reads: 1,
                total_reads: 1,
                actual_secs: r.actual_secs,
                projected_full_secs: r.projected_secs,
            });
        }
        let text = render_fig4(&Fig4Result { runs, summary });
        assert!(text.contains("terminated early: 1 of 2"));
        assert!(text.contains("SRR1"), "stopped runs listed");
        assert!(!text.contains("SRR2\n"), "completed runs not itemized");
        assert!(text.contains("all stopped runs single-cell: true"));
    }

    #[test]
    fn index_table_rendering() {
        let c = IndexComparison {
            stats_108: stats(2880),
            stats_111: stats(1000),
            size_ratio: 2.88,
            projected_gib_108: 85.0,
            projected_gib_111: 29.5,
            instance_108: "r6a.4xlarge".into(),
            instance_111: "r6a.2xlarge".into(),
        };
        let text = render_index_table(&c);
        assert!(text.contains("2.88"));
        assert!(text.contains("r6a.4xlarge"));
        assert!(text.contains("85.0G"));
    }
}
