//! Per-accession cost/latency attribution ledger (the SLO engine's receipt).
//!
//! An SLO verdict ("turnaround p95 blew its budget") is only actionable if you
//! can see *where* the seconds and dollars went. The ledger decomposes every
//! completed accession's turnaround and dollar cost into named parts:
//!
//! * **queue wait** — submit → first delivery (SQS latency + backlog);
//! * **download** — `prefetch` + `fasterq-dump` stage seconds;
//! * **align** / **collect** — the remaining pipeline stages;
//! * **retry waste** — seconds burned by attempts that produced nothing durable
//!   (worker crashes, duplicate completions, lost uploads) for this accession;
//! * **idle gap** — everything else on the clock path: lease-expiry waiting
//!   between attempts, re-delivery polling, scheduling slack.
//!
//! and the dollars into **compute** (the successful attempt), **retry** (the
//! wasted attempts) and **idle-amortized** (the accession's share of fleet time
//! that bought no accession in particular: instance init, idle polling, waste
//! on accessions that never completed).
//!
//! ## The sum invariant
//!
//! Each entry's `turnaround_secs` and `cost_usd` are *defined* as the canonical
//! left-to-right fold of their parts (see [`AccessionLedgerEntry::fold`]), so
//! "parts sum to the total" holds **bit-exactly** by construction — a test can
//! re-fold the parts and compare with `==`, no epsilon. Agreement with the
//! independently measured completion time is asserted separately (within float
//! noise) when the ledger is built, and the idle-amortized dollars absorb the
//! distribution remainder in the last entry so the per-accession costs account
//! for the campaign's `total_usd` to within float ulps — the *per-entry* folds
//! are the bit-exact contract; cross-entry sums are subject to rounding.
//!
//! The ledger is part of the SLO engine's report surface and, like the rest of
//! telemetry, is a pure observer: it is computed after settlement from
//! quantities the engine already tracks and is excluded from
//! [`crate::orchestrator::CampaignReport::summary_digest`].

use crate::pipeline::StageTimes;
use telemetry::SloStatus;

/// One completed accession's turnaround and cost, decomposed.
#[derive(Clone, Debug, PartialEq)]
pub struct AccessionLedgerEntry {
    /// Accession id.
    pub accession: String,
    /// Submit → first delivery, seconds.
    pub queue_wait_secs: f64,
    /// `prefetch` + `fasterq-dump` stage seconds of the successful attempt.
    pub download_secs: f64,
    /// Align stage seconds of the successful attempt.
    pub align_secs: f64,
    /// Collect stage seconds of the successful attempt.
    pub collect_secs: f64,
    /// Seconds burned by this accession's failed attempts (crashes, duplicate
    /// completions, lost uploads).
    pub retry_waste_secs: f64,
    /// Clock-path seconds not covered by any part above (lease-expiry waits,
    /// re-delivery polling, scheduling slack).
    pub idle_gap_secs: f64,
    /// Drained-attempt seconds a resumed attempt did *not* redo — compute
    /// rescued by the checkpoint/resume path ([`crate::recovery`]). Those
    /// seconds already sit inside the clock path (they happened before the
    /// successful attempt started, so `idle_gap_secs` covers them); this field
    /// labels them without changing [`Self::latency_parts`]. Always 0 when
    /// recovery is off.
    pub salvaged_secs: f64,
    /// The recovery-aware name for `retry_waste_secs`: seconds this accession's
    /// failed attempts truly burned. With recovery on, the old pre-recovery
    /// retry waste splits into `salvaged_secs` (rescued) + `lost_secs` (burned);
    /// with recovery off the split is trivial (`lost == retry_waste`, salvaged
    /// 0). Kept equal to `retry_waste_secs` so existing part math is untouched.
    pub lost_secs: f64,
    /// Submit → completion, seconds. Equals [`Self::fold`] of
    /// [`Self::latency_parts`] bit-exactly, by construction.
    pub turnaround_secs: f64,
    /// Dollars for the successful attempt's compute seconds.
    pub compute_usd: f64,
    /// Dollars for this accession's wasted attempt seconds.
    pub retry_usd: f64,
    /// This accession's share of fleet dollars that bought no accession in
    /// particular (init, idle polling, waste on never-completed accessions).
    pub idle_amortized_usd: f64,
    /// Total dollars attributed to this accession. Equals [`Self::fold`] of
    /// [`Self::cost_parts`] bit-exactly, by construction.
    pub cost_usd: f64,
}

impl AccessionLedgerEntry {
    /// The latency decomposition, in canonical fold order.
    pub fn latency_parts(&self) -> [f64; 6] {
        [
            self.queue_wait_secs,
            self.download_secs,
            self.align_secs,
            self.collect_secs,
            self.retry_waste_secs,
            self.idle_gap_secs,
        ]
    }

    /// The cost decomposition, in canonical fold order.
    pub fn cost_parts(&self) -> [f64; 3] {
        [self.compute_usd, self.retry_usd, self.idle_amortized_usd]
    }

    /// The canonical left-to-right sum the ledger totals are defined by.
    /// Float addition is not associative, so the *order* is part of the
    /// invariant: anything re-checking "parts sum to total" must use this fold.
    pub fn fold(parts: &[f64]) -> f64 {
        parts.iter().fold(0.0, |acc, &p| acc + p)
    }
}

/// Campaign-level rollup of the ledger (plain sums over entries).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LedgerTotals {
    /// Entries in the ledger (completed accessions).
    pub accessions: usize,
    /// Seconds, per part, summed over entries.
    pub queue_wait_secs: f64,
    /// Download (prefetch + dump) seconds over entries.
    pub download_secs: f64,
    /// Align seconds over entries.
    pub align_secs: f64,
    /// Collect seconds over entries.
    pub collect_secs: f64,
    /// Retry-waste seconds over entries.
    pub retry_waste_secs: f64,
    /// Idle-gap seconds over entries.
    pub idle_gap_secs: f64,
    /// Salvaged (checkpoint-rescued) seconds over entries.
    pub salvaged_secs: f64,
    /// Lost (truly burned) seconds over entries — equals `retry_waste_secs`.
    pub lost_secs: f64,
    /// Turnaround seconds over entries.
    pub turnaround_secs: f64,
    /// Compute dollars over entries.
    pub compute_usd: f64,
    /// Retry dollars over entries.
    pub retry_usd: f64,
    /// Idle-amortized dollars over entries.
    pub idle_amortized_usd: f64,
    /// Total attributed dollars. When at least one accession completed this
    /// matches the campaign's `total_usd` to within float ulps (the residual's
    /// last-entry absorption makes the *shares* sum exactly; re-summing the
    /// per-entry folds reintroduces rounding).
    pub cost_usd: f64,
}

/// The SLO engine's end-of-campaign report: objective attainment plus the
/// attribution ledger.
#[derive(Clone, Debug, PartialEq)]
pub struct SloReport {
    /// Per-objective attainment, in registry order.
    pub objectives: Vec<SloStatus>,
    /// Per-accession attribution, in completion order.
    pub ledger: Vec<AccessionLedgerEntry>,
    /// Ledger rollup.
    pub totals: LedgerTotals,
}

/// What the engine records about one completed accession, before attribution.
#[derive(Clone, Debug)]
pub(crate) struct CompletedAccession {
    pub accession: String,
    /// Submit → first delivery, seconds (0 if the first receive was faulted
    /// away and only redeliveries reached a worker).
    pub queue_wait_secs: f64,
    /// Stage durations of the successful attempt.
    pub stage_secs: StageTimes,
    /// Simulated completion time. Campaigns submit every accession at t=0, so
    /// this *is* the turnaround.
    pub ended_secs: f64,
    /// Wasted seconds attributed to this accession's failed attempts.
    pub retry_waste_secs: f64,
    /// Drained-attempt seconds rescued by checkpoint/resume (0 without
    /// recovery).
    pub salvaged_secs: f64,
}

/// Build the ledger: decompose each completed accession's turnaround, price the
/// parts at `hourly_rate`, and amortize the residual of `total_usd` (fleet
/// dollars not attributable to any one accession's attempts) across entries in
/// proportion to their compute dollars.
pub(crate) fn build_ledger(
    completed: &[CompletedAccession],
    hourly_rate: f64,
    total_usd: f64,
) -> (Vec<AccessionLedgerEntry>, LedgerTotals) {
    let mut entries: Vec<AccessionLedgerEntry> = Vec::with_capacity(completed.len());
    for c in completed {
        let download = c.stage_secs.prefetch_secs + c.stage_secs.dump_secs;
        let align = c.stage_secs.align_secs;
        let collect = c.stage_secs.collect_secs;
        // The clock path is measured (ended − submit-at-0); the parts are
        // modeled. The gap between them is genuine idle time on the accession's
        // path (lease expiries, polling), never negative beyond float noise.
        let direct = AccessionLedgerEntry::fold(&[
            c.queue_wait_secs,
            download,
            align,
            collect,
            c.retry_waste_secs,
        ]);
        let idle_gap = (c.ended_secs - direct).max(0.0);
        let latency_parts =
            [c.queue_wait_secs, download, align, collect, c.retry_waste_secs, idle_gap];
        let turnaround = AccessionLedgerEntry::fold(&latency_parts);
        debug_assert!(
            (turnaround - c.ended_secs).abs() <= 1e-9 * c.ended_secs.abs().max(1.0),
            "ledger turnaround {} diverged from measured completion {} for {}",
            turnaround,
            c.ended_secs,
            c.accession
        );
        let compute_usd = c.stage_secs.total() * hourly_rate / 3600.0;
        let retry_usd = c.retry_waste_secs * hourly_rate / 3600.0;
        entries.push(AccessionLedgerEntry {
            accession: c.accession.clone(),
            queue_wait_secs: c.queue_wait_secs,
            download_secs: download,
            align_secs: align,
            collect_secs: collect,
            retry_waste_secs: c.retry_waste_secs,
            idle_gap_secs: idle_gap,
            salvaged_secs: c.salvaged_secs,
            lost_secs: c.retry_waste_secs,
            turnaround_secs: turnaround,
            compute_usd,
            retry_usd,
            idle_amortized_usd: 0.0,
            cost_usd: 0.0,
        });
    }

    // Amortize the residual: fleet dollars that bought no accession in
    // particular (init, idle polling, waste on never-completed accessions).
    // Shares are proportional to compute dollars; the *last* entry absorbs the
    // remainder so the attributed dollars re-fold to `total_usd` bit-exactly.
    if !entries.is_empty() {
        let attributed = entries
            .iter()
            .flat_map(|e| [e.compute_usd, e.retry_usd])
            .fold(0.0, |acc, p| acc + p);
        let residual = total_usd - attributed;
        let weight_sum: f64 = entries.iter().map(|e| e.compute_usd).sum();
        let n = entries.len();
        let mut handed_out = 0.0f64;
        for (i, e) in entries.iter_mut().enumerate() {
            e.idle_amortized_usd = if i + 1 == n {
                residual - handed_out
            } else if weight_sum > 0.0 {
                residual * (e.compute_usd / weight_sum)
            } else {
                residual / n as f64
            };
            handed_out += e.idle_amortized_usd;
        }
    }
    for e in &mut entries {
        e.cost_usd = AccessionLedgerEntry::fold(&e.cost_parts());
    }

    let mut totals = LedgerTotals { accessions: entries.len(), ..LedgerTotals::default() };
    for e in &entries {
        totals.queue_wait_secs += e.queue_wait_secs;
        totals.download_secs += e.download_secs;
        totals.align_secs += e.align_secs;
        totals.collect_secs += e.collect_secs;
        totals.retry_waste_secs += e.retry_waste_secs;
        totals.idle_gap_secs += e.idle_gap_secs;
        totals.salvaged_secs += e.salvaged_secs;
        totals.lost_secs += e.lost_secs;
        totals.turnaround_secs += e.turnaround_secs;
        totals.compute_usd += e.compute_usd;
        totals.retry_usd += e.retry_usd;
        totals.idle_amortized_usd += e.idle_amortized_usd;
        totals.cost_usd += e.cost_usd;
    }
    (entries, totals)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn completed(accession: &str, ended: f64, waste: f64) -> CompletedAccession {
        CompletedAccession {
            accession: accession.to_string(),
            queue_wait_secs: 10.0,
            stage_secs: StageTimes {
                prefetch_secs: 5.0,
                dump_secs: 15.0,
                align_secs: 60.0,
                collect_secs: 10.0,
            },
            ended_secs: ended,
            retry_waste_secs: waste,
            salvaged_secs: 0.0,
        }
    }

    #[test]
    fn salvaged_and_lost_label_the_waste_split() {
        let mut c = completed("A", 200.0, 25.0);
        c.salvaged_secs = 40.0;
        let (entries, totals) = build_ledger(&[c], 1.0, 1.0);
        let e = &entries[0];
        assert_eq!(e.salvaged_secs, 40.0);
        assert_eq!(e.lost_secs, e.retry_waste_secs, "lost is the recovery-aware alias");
        // Salvaged seconds are informational: the 6-part latency fold is untouched.
        assert_eq!(AccessionLedgerEntry::fold(&e.latency_parts()), e.turnaround_secs);
        assert_eq!(totals.salvaged_secs, 40.0);
        assert_eq!(totals.lost_secs, totals.retry_waste_secs);
    }

    #[test]
    fn latency_parts_refold_to_turnaround_bit_exactly() {
        let (entries, _) = build_ledger(
            &[completed("A", 100.0, 0.0), completed("B", 173.3, 41.7)],
            1.0896,
            3.25,
        );
        for e in &entries {
            assert_eq!(
                AccessionLedgerEntry::fold(&e.latency_parts()),
                e.turnaround_secs,
                "latency fold must be bit-exact for {}",
                e.accession
            );
            assert_eq!(AccessionLedgerEntry::fold(&e.cost_parts()), e.cost_usd, "cost fold");
        }
    }

    #[test]
    fn attributed_dollars_account_for_the_campaign_total() {
        let total_usd = 7.7731;
        let (entries, totals) = build_ledger(
            &[completed("A", 100.0, 0.0), completed("B", 200.0, 30.0), completed("C", 300.0, 0.0)],
            1.0896,
            total_usd,
        );
        // The idle *shares* sum to the residual exactly (last entry absorbs the
        // remainder); re-summing the per-entry folds can differ by float ulps.
        let refold = AccessionLedgerEntry::fold(
            &entries.iter().map(|e| e.cost_usd).collect::<Vec<f64>>(),
        );
        assert!((refold - total_usd).abs() < 1e-12, "{refold} vs {total_usd}");
        assert!((totals.cost_usd - total_usd).abs() < 1e-12);
        assert_eq!(totals.accessions, 3);
        let idle_refold = AccessionLedgerEntry::fold(
            &entries.iter().map(|e| e.idle_amortized_usd).collect::<Vec<f64>>(),
        );
        let attributed = entries
            .iter()
            .flat_map(|e| [e.compute_usd, e.retry_usd])
            .fold(0.0, |acc, p| acc + p);
        assert_eq!(idle_refold, total_usd - attributed, "shares re-fold to the residual exactly");
    }

    #[test]
    fn idle_gap_covers_the_unmodeled_clock_path() {
        // Stages + wait = 100s, completion at 130s: 30s of idle gap.
        let (entries, _) = build_ledger(&[completed("A", 130.0, 0.0)], 1.0, 1.0);
        assert!((entries[0].idle_gap_secs - 30.0).abs() < 1e-12);
        assert!((entries[0].turnaround_secs - 130.0).abs() < 1e-9);
    }

    #[test]
    fn empty_ledger_is_empty() {
        let (entries, totals) = build_ledger(&[], 1.0, 5.0);
        assert!(entries.is_empty());
        assert_eq!(totals, LedgerTotals::default());
    }

    #[test]
    fn zero_compute_weights_split_residual_equally() {
        let mut a = completed("A", 10.0, 0.0);
        let mut b = completed("B", 10.0, 0.0);
        for c in [&mut a, &mut b] {
            c.stage_secs = StageTimes {
                prefetch_secs: 0.0,
                dump_secs: 0.0,
                align_secs: 0.0,
                collect_secs: 0.0,
            };
        }
        let (entries, _) = build_ledger(&[a, b], 1.0, 4.0);
        assert_eq!(entries[0].idle_amortized_usd, 2.0);
        assert_eq!(entries[1].idle_amortized_usd, 2.0);
    }
}
