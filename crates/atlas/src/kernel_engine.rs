//! The discrete-event campaign engine (the default [`crate::orchestrator::CampaignEngine`]).
//!
//! Runs the exact event semantics the deleted legacy loop pioneered — same
//! event taxonomy, same timestamps, same `(time, sequence)` ordering — on
//! kernel-grade machinery:
//!
//! * [`cloudsim::Kernel`] schedules events (monotone clock, deterministic
//!   FIFO tie-break, dispatch stats);
//! * the heap-based [`cloudsim::SqsQueue`] fires visibility expiries as scheduled
//!   events instead of rescanning the message store per receive;
//! * worker state (busy epoch, telemetry span) lives in a dense vector indexed by
//!   instance serial — instance/job state machines with O(1) transitions;
//! * campaign progress ("is every accession resolved?") is a maintained counter,
//!   not a per-event recount over results + dead letters.
//!
//! Nothing here is per-tick or O(campaign size) inside the event loop, which is
//! what lets `bench_fleet_campaign` push 10k+ accessions across 1k+ instances in
//! seconds — a regime two orders of magnitude beyond the old per-tick loop
//! (which soaked against this engine byte-for-byte before being deleted).
//!
//! Determinism is not aspirational: [`crate::differential`] replays the same
//! seeded campaign and asserts identical digests and event logs, and the
//! chaos/property suites run against this path.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use crate::early_stop::SavingsSummary;
use crate::ledger::{build_ledger, CompletedAccession, SloReport};
use crate::orchestrator::{
    build_normalized, emit_job_spans, emit_progress_events, CampaignConfig, CampaignReport, Event,
    FleetSample,
};
use crate::pipeline::{PipelineResult, StageTimes};
use crate::recovery::CheckpointStore;
use crate::workload::CampaignWorkload;
use crate::AtlasError;
use cloudsim::sqs::ReceiptHandle;
use bytes::Bytes;
use cloudsim::asg::AutoScalingGroup;
use cloudsim::cost::CostTracker;
use cloudsim::faults::{FaultInjector, FaultOp};
use cloudsim::instance::{InstanceId, InstanceState};
use cloudsim::{Kernel, ObjectStore, SimDuration, SimTime, SqsQueue};
use telemetry::{JsonValue, Monitor, Recorder, SpanId, TimeSeries, RATE_BUCKETS, SECS_BUCKETS};

/// Per-instance worker state, indexed by instance serial (dense: serial ==
/// `InstanceId.0`, ids count from 1). The instance lifecycle itself
/// (Initializing → Running → Terminated) lives in [`cloudsim::Instance`]; this
/// adds the orchestration-side job state.
#[derive(Clone, Debug, Default)]
struct Worker {
    /// Epoch of the job this worker is busy on (`None` = idle). Epochs are
    /// unique per job start, so a stale `JobDone`/`WorkerCrash` event from a
    /// dead assignment can never be mistaken for the live one.
    busy_epoch: Option<u64>,
    /// The instance's open telemetry span, until it terminates.
    span: Option<SpanId>,
    /// What the worker is busy on, tracked only when recovery is enabled so a
    /// spot-notice drain can checkpoint the job and hand its message back.
    /// `Some` iff `busy_epoch` is `Some` (on recovery campaigns).
    inflight: Option<Box<InflightJob>>,
}

/// The drain-relevant facts about a running job, captured at dispatch.
#[derive(Clone, Debug)]
struct InflightJob {
    accession: String,
    receipt: ReceiptHandle,
    started_secs: f64,
    /// Stage durations of this attempt (align already reduced on resume).
    stage_secs: StageTimes,
    /// Cumulative align offset this attempt resumed from (0 for fresh starts).
    resumed_from: f64,
}

fn widx(id: InstanceId) -> usize {
    (id.0 - 1) as usize
}

/// Run a campaign over `accessions` on the discrete-event kernel.
pub(crate) fn run_campaign(
    workload: &Arc<dyn CampaignWorkload>,
    cfg: &CampaignConfig,
    accessions: &[String],
) -> Result<CampaignReport, AtlasError> {
    let mut events: Kernel<Event> = Kernel::new();
    let mut sqs: SqsQueue<String> = SqsQueue::new(cfg.visibility_timeout);
    if let Some(max) = cfg.max_receive_count {
        sqs = sqs.with_max_receive_count(max);
    }
    let mut asg = AutoScalingGroup::new(cfg.scaling, cfg.instance_type, cfg.spot)
        .map_err(AtlasError::Cloud)?;
    let mut workers: Vec<Worker> = Vec::new();
    let mut busy_count = 0usize;
    let mut next_epoch: u64 = 1;
    let mut results: BTreeMap<String, PipelineResult> = BTreeMap::new();
    let mut completion_order: Vec<String> = Vec::new();
    let mut interruptions = 0usize;
    let mut redeliveries = 0u64;
    let mut timeline = Vec::new();
    let mut fleet_series = TimeSeries::new();
    let mut busy_series = TimeSeries::new();
    let mut instance_serial = 0u64;
    let mut injector = FaultInjector::new(cfg.faults.clone().unwrap_or_default());
    // Telemetry is strictly an observer: fault decisions, scaling and the
    // event clock never read it, so a disabled recorder changes nothing.
    let recorder = Arc::new(if cfg.telemetry { Recorder::new() } else { Recorder::disabled() });
    injector.attach_recorder(Arc::clone(&recorder));
    asg.attach_recorder(Arc::clone(&recorder));
    // ——— SLO engine state (all observer-side; unused when `cfg.slo` is off) ———
    let slo_on = cfg.slo.is_some();
    let slo_alpha = cfg.slo.as_ref().map(|s| s.sketch_alpha).unwrap_or(0.0);
    // The single pricing point: the same hourly rate the settle-time
    // `CostTracker` bills at, so sketch samples and ledger dollars agree with
    // the cost report to the bit.
    let slo_rate = if cfg.spot {
        CostTracker::with_spot(cfg.spot_market)
    } else {
        CostTracker::on_demand()
    }
    .hourly_rate(cfg.instance_type, cfg.spot);
    let mut slo_queue_waits: BTreeMap<String, f64> = BTreeMap::new();
    let mut slo_retry_waste: BTreeMap<String, f64> = BTreeMap::new();
    let mut slo_completed_at: BTreeMap<String, f64> = BTreeMap::new();
    // The monitor watches the stream through the recorder's observer hook;
    // with telemetry off there is no stream, so no monitor either. An SLO
    // config attaches one even without alert rules: the burn-rate evaluator
    // *is* a stream observer.
    let monitor = if cfg.telemetry && (cfg.monitor.is_some() || slo_on) {
        let mut mc = cfg.monitor.clone().unwrap_or_default();
        if let Some(slo) = &cfg.slo {
            mc.slos = slo.registry.clone();
            mc.slos.cost_usd_per_hour = slo_rate;
        }
        let m = Monitor::new(mc);
        recorder.attach_observer(m.observer());
        Some(m)
    } else {
        None
    };
    let campaign_span = recorder.span_start("campaign", SpanId::NONE, 0.0);
    let mut dl_seen = 0usize;
    // Accessions currently resolved by dead-lettering alone (they may later
    // complete via an in-flight duplicate, which moves them to `results`).
    let mut dl_only: BTreeSet<String> = BTreeSet::new();
    let mut store = ObjectStore::new();
    // Small sentinel for the index manifest: instances GET it at init, so a
    // persistent S3 outage can fail a launch. The bulk index transfer time
    // itself is modeled by `init_secs`, not by moving real bytes.
    store.put("index/manifest", Bytes::from_static(b"star-index manifest"));
    let mut duplicate_completions = 0u64;
    let mut wasted_secs = 0.0f64;
    // ——— Recovery state (untouched when `cfg.recovery` is off) ———
    let recovery_on = cfg.recovery.is_some();
    let ckpt_ttl = cfg.recovery.map(|r| r.checkpoint_ttl_secs).unwrap_or(0.0);
    let mut ckpt_store = CheckpointStore::new();
    // Checkpointed seconds not yet reused by a resumed completion; the leftover
    // reclassifies as waste at settlement so drained time is accounted exactly
    // once (salvaged or lost).
    let mut pending_salvage: BTreeMap<String, f64> = BTreeMap::new();
    let mut salvaged_by_acc: BTreeMap<String, f64> = BTreeMap::new();
    let mut salvaged_secs_total = 0.0f64;

    for a in accessions {
        sqs.send(a.clone());
    }
    events.schedule(SimTime::ZERO, Event::ScaleTick);

    let target = accessions.len();
    let init = SimDuration::from_secs(cfg.init_secs());
    // Generous safety valve: every accession can bounce a few times before we
    // declare the simulation wedged (chaos campaigns bounce more than most).
    let max_events = 10_000 + 400 * target as u64 + 200_000;
    let mut n_events = 0u64;

    // An accession is resolved once it completed or dead-lettered without
    // completing; the campaign runs until every accession is resolved. Unlike
    // the legacy loop's recount, this is a maintained O(1) quantity:
    // `results.len() + dl_only.len()`.
    while results.len() + dl_only.len() < target {
        let Some((now, event)) = events.pop() else {
            return Err(AtlasError::InvalidParams(
                "event queue drained before the campaign completed (simulation bug)".into(),
            ));
        };
        if now.as_secs() > cfg.max_sim_secs {
            return Err(AtlasError::InvalidParams(format!(
                "campaign exceeded max_sim_secs ({}); likely stuck",
                cfg.max_sim_secs
            )));
        }
        n_events += 1;
        if n_events > max_events {
            return Err(AtlasError::InvalidParams("event budget exceeded (simulation bug)".into()));
        }
        injector.set_now(now.as_secs());

        match event {
            Event::ScaleTick => {
                let pending = sqs.pending_count();
                let decision = asg.evaluate(pending);
                if decision.launch > 0 {
                    recorder.event(
                        now.as_secs(),
                        "scale_out",
                        vec![
                            ("launch", JsonValue::from(decision.launch as u64)),
                            ("pending", JsonValue::from(pending)),
                        ],
                    );
                }
                for _ in 0..decision.launch {
                    let id = asg.launch(now);
                    fleet_series.record(now.as_secs(), asg.active_count() as f64);
                    instance_serial += 1;
                    debug_assert_eq!(instance_serial, id.0, "serials are dense instance ids");
                    let span = recorder.span_start_attrs(
                        "instance",
                        campaign_span,
                        now.as_secs(),
                        &[
                            ("instance", id.0.to_string()),
                            ("itype", cfg.instance_type.name.to_string()),
                            ("spot", cfg.spot.to_string()),
                        ],
                    );
                    workers.push(Worker { busy_epoch: None, span: Some(span), inflight: None });
                    // Init starts with the manifest GET; a persistent S3
                    // failure kills the launch and the ASG replaces the
                    // instance at a later tick.
                    match store.get_retrying(
                        "index/manifest",
                        &mut injector,
                        instance_serial,
                        &cfg.retry,
                    ) {
                        Ok((_, d)) => {
                            events.schedule(now + init + d, Event::InstanceReady(id));
                        }
                        Err(_) => {
                            let _ = asg.terminate(id, now);
                            if let Some(s) = workers[widx(id)].span.take() {
                                recorder.span_end(s, now.as_secs());
                            }
                            recorder.event(
                                now.as_secs(),
                                "instance_init_failed",
                                vec![("instance", JsonValue::from(id.0))],
                            );
                            fleet_series.record(now.as_secs(), asg.active_count() as f64);
                        }
                    }
                    if cfg.spot {
                        // One reclaim pipeline for market-sampled and
                        // fault-plan burst interruptions: identical schedule
                        // (and digest) to the pre-unification two-call form.
                        // With recovery on, each reclaim is preceded by its
                        // notice; scheduling the notice first makes the FIFO
                        // tie-break dispatch it before a same-instant reclaim.
                        for r in injector.reclaim_schedule(&cfg.spot_market, now, instance_serial)
                        {
                            if recovery_on {
                                events.schedule(
                                    injector.notice_at(now, r.at),
                                    Event::SpotNotice {
                                        instance: id,
                                        reclaim_at: r.at,
                                        source: r.source,
                                    },
                                );
                            }
                            events.schedule(r.at, Event::Interruption(id));
                        }
                    }
                }
                for id in decision.terminate {
                    // Never scale-in a busy worker; it finishes its job first.
                    if workers[widx(id)].busy_epoch.is_none()
                        && matches!(asg.terminate(id, now), Ok(true))
                    {
                        fleet_series.record(now.as_secs(), asg.active_count() as f64);
                        if let Some(s) = workers[widx(id)].span.take() {
                            recorder.span_end(s, now.as_secs());
                        }
                        recorder.event(
                            now.as_secs(),
                            "scale_in",
                            vec![
                                ("instance", JsonValue::from(id.0)),
                                ("pending", JsonValue::from(pending)),
                            ],
                        );
                    }
                }
                timeline.push(FleetSample {
                    at_secs: now.as_secs(),
                    active_instances: asg.active_count(),
                    pending_messages: pending,
                });
                fleet_series.record(now.as_secs(), asg.active_count() as f64);
                busy_series.record(now.as_secs(), busy_count as f64);
                recorder.gauge_set_at(now.as_secs(), "fleet_active", asg.active_count() as f64);
                recorder.gauge_set_at(now.as_secs(), "queue_pending", pending as f64);
                if recovery_on {
                    // Checkpoint-store housekeeping rides the ASG tick.
                    let expired = ckpt_store.gc(now.as_secs(), ckpt_ttl);
                    if expired > 0 {
                        recorder.counter_add("checkpoints_expired", expired as u64);
                    }
                }
                if results.len() + dl_only.len() < target {
                    events.schedule(now + cfg.scale_tick, Event::ScaleTick);
                }
            }
            Event::InstanceReady(id) => {
                if let Some(inst) = asg.instance_mut(id) {
                    if inst.state == InstanceState::Initializing {
                        inst.mark_running().map_err(AtlasError::Cloud)?;
                        recorder.event(
                            now.as_secs(),
                            "instance_ready",
                            vec![("instance", JsonValue::from(id.0))],
                        );
                        events.schedule(now, Event::Poll(id));
                    }
                }
            }
            Event::Poll(id) => {
                let alive =
                    asg.instance(id).map(|i| i.state == InstanceState::Running).unwrap_or(false);
                if !alive || workers[widx(id)].busy_epoch.is_some() {
                    continue;
                }
                let serial = id.0;
                let received = injector
                    .with_retry(serial, FaultOp::SqsReceive, &cfg.retry, || Ok(sqs.receive(now)));
                let receive_backoff = received.backoff;
                let msg = match received.outcome {
                    Ok(m) => m,
                    Err(_) => {
                        // Receive retries exhausted: the worker backs off and
                        // polls again; no message was consumed.
                        events.schedule(now + cfg.poll_interval + receive_backoff, Event::Poll(id));
                        continue;
                    }
                };
                // A receive can tip a message over its allowance into the DLQ.
                for a in sqs.dead_letters().iter().skip(dl_seen) {
                    recorder.event(
                        now.as_secs(),
                        "dead_letter",
                        vec![("accession", JsonValue::from(a.as_str()))],
                    );
                    recorder.counter_add("dead_letters", 1);
                    if !results.contains_key(a.as_str()) {
                        dl_only.insert(a.clone());
                    }
                }
                dl_seen = sqs.dead_letters().len();
                match msg {
                    Some((accession, receipt, count)) => {
                        if count > 1 {
                            redeliveries += 1;
                            recorder.counter_add("redeliveries", 1);
                        } else if let Some(wait) = sqs.queue_wait(receipt) {
                            // First delivery: submit → first-receive latency.
                            recorder.event(
                                now.as_secs(),
                                "queue_wait",
                                vec![
                                    ("accession", JsonValue::from(accession.as_str())),
                                    ("instance", JsonValue::from(id.0)),
                                    ("wait_secs", JsonValue::from(wait.as_secs())),
                                ],
                            );
                            recorder.observe("queue_wait_secs", SECS_BUCKETS, wait.as_secs());
                            if slo_on {
                                recorder.sketch_observe(
                                    "slo_queue_wait_secs",
                                    slo_alpha,
                                    wait.as_secs(),
                                );
                                slo_queue_waits.insert(accession.clone(), wait.as_secs());
                            }
                        }
                        if results.contains_key(&accession) {
                            // A duplicate delivery of already-finished work:
                            // acknowledge and poll again immediately.
                            recorder.event(
                                now.as_secs(),
                                "duplicate_receive",
                                vec![
                                    ("accession", JsonValue::from(accession.as_str())),
                                    ("instance", JsonValue::from(id.0)),
                                ],
                            );
                            let _ = injector
                                .with_retry(serial, FaultOp::SqsDelete, &cfg.retry, || {
                                    sqs.delete(receipt)
                                })
                                .outcome;
                            events.schedule(now, Event::Poll(id));
                            continue;
                        }
                        // With a monitor attached the job also reports live
                        // progress, like STAR's `Log.progress.out`: snapshots
                        // from the real alignment, timestamped inside the
                        // modeled align window. Without a monitor no progress
                        // events exist and the log is byte-identical to a
                        // monitor-free build.
                        let (mut result, history) = if monitor.is_some() {
                            workload.run_accession_with_history(&accession)?
                        } else {
                            (workload.run_accession(&accession)?, Vec::new())
                        };
                        // Resume: a live checkpoint from a drained attempt lets
                        // this one skip the already-aligned reads — the align
                        // stage shrinks by the checkpointed offset. The star
                        // crate's differential test is what entitles the model
                        // to treat the resumed output as identical.
                        let mut resumed_secs = 0.0f64;
                        if recovery_on {
                            if let Some(offset) =
                                ckpt_store.get(&accession, now.as_secs(), ckpt_ttl)
                            {
                                let skip = offset.min(result.stage_secs.align_secs);
                                if skip > 0.0 {
                                    result.stage_secs.align_secs -= skip;
                                    resumed_secs = skip;
                                    recorder.event(
                                        now.as_secs(),
                                        "resume",
                                        vec![
                                            ("accession", JsonValue::from(accession.as_str())),
                                            ("instance", JsonValue::from(id.0)),
                                            ("skipped_secs", JsonValue::from(skip)),
                                        ],
                                    );
                                    recorder.counter_add("checkpoint_resumes", 1);
                                }
                            }
                        }
                        if !history.is_empty() {
                            emit_progress_events(
                                &recorder,
                                &accession,
                                id,
                                now.as_secs(),
                                &result,
                                &history,
                            );
                        }
                        let duration = result.stage_secs.total().max(0.001);
                        let epoch = next_epoch;
                        next_epoch += 1;
                        workers[widx(id)].busy_epoch = Some(epoch);
                        if recovery_on {
                            workers[widx(id)].inflight = Some(Box::new(InflightJob {
                                accession: accession.clone(),
                                receipt,
                                started_secs: now.as_secs(),
                                stage_secs: result.stage_secs,
                                resumed_from: resumed_secs,
                            }));
                        }
                        busy_count += 1;
                        busy_series.record(now.as_secs(), busy_count as f64);
                        // A failed or stale lease extension leaves the base
                        // visibility timeout in force: the message may
                        // re-deliver mid-job and the duplicate completion is
                        // absorbed by the results map.
                        let _ = injector
                            .with_retry(serial, FaultOp::SqsExtend, &cfg.retry, || {
                                sqs.change_visibility(
                                    receipt,
                                    now,
                                    SimDuration::from_secs(duration * cfg.lease_margin),
                                )
                            })
                            .outcome;
                        // Duplicate delivery: the broker violates visibility
                        // and hands this message to a second worker while
                        // ours is still working on it.
                        if injector.roll(serial, FaultOp::DuplicateDelivery) {
                            let _ = sqs.force_visible(receipt);
                        }
                        if injector.roll(serial, FaultOp::WorkerCrash) {
                            // Crash at a deterministic offset inside a
                            // uniformly chosen pipeline stage.
                            let stage = ((injector.side_roll(serial, 0xC0DE)
                                * StageTimes::N_STAGES as f64)
                                as usize)
                                .min(StageTimes::N_STAGES - 1);
                            let offset = (result.stage_secs.prefix_secs(stage)
                                + injector.side_roll(serial, 0xC0DF)
                                    * result.stage_secs.as_array()[stage])
                                .clamp(0.0, duration);
                            events.schedule(
                                now + SimDuration::from_secs(offset),
                                Event::WorkerCrash {
                                    instance: id,
                                    epoch,
                                    accession: accession.clone(),
                                    wasted_secs: offset,
                                },
                            );
                        }
                        events.schedule(
                            now + SimDuration::from_secs(duration),
                            Event::JobDone {
                                instance: id,
                                epoch,
                                accession,
                                receipt,
                                result: Box::new(result),
                                resumed_secs,
                            },
                        );
                    }
                    None => {
                        if sqs.pending_count() > 0 {
                            events.schedule(
                                now + cfg.poll_interval + receive_backoff,
                                Event::Poll(id),
                            );
                        }
                        // Queue fully drained: stop polling; the ASG will reap us.
                    }
                }
            }
            Event::JobDone { instance, epoch, accession, receipt, result, resumed_secs } => {
                let alive = asg
                    .instance(instance)
                    .map(|i| i.state != InstanceState::Terminated)
                    .unwrap_or(false);
                if !alive || workers[widx(instance)].busy_epoch != Some(epoch) {
                    // The worker died mid-job (spot reclaim) or drained and
                    // handed the message back: the result is lost and the
                    // message re-delivers (immediately after a drain, after
                    // its lease expires otherwise).
                    continue;
                }
                workers[widx(instance)].busy_epoch = None;
                workers[widx(instance)].inflight = None;
                busy_count -= 1;
                busy_series.record(now.as_secs(), busy_count as f64);
                let serial = instance.0;
                let duration = result.stage_secs.total();
                // Job spans are emitted retroactively: the job started when the
                // message was received, `duration` sim-seconds ago.
                let started = now.as_secs() - duration;
                let job_parent = workers[widx(instance)].span.unwrap_or(campaign_span);
                let upload = store.put_retrying(
                    &format!("results/{accession}"),
                    Bytes::from(accession.as_bytes().to_vec()),
                    &mut injector,
                    serial,
                    &cfg.retry,
                );
                match upload {
                    Ok(d) => {
                        // The lease was sized with margin, so the delete should
                        // succeed; if it went stale (duplicate delivery, missed
                        // extension) the message re-delivers and the duplicate
                        // is absorbed by the results map.
                        let deleted = injector
                            .with_retry(serial, FaultOp::SqsDelete, &cfg.retry, || {
                                sqs.delete(receipt)
                            });
                        if let std::collections::btree_map::Entry::Vacant(slot) =
                            results.entry(accession.clone())
                        {
                            emit_job_spans(
                                &recorder,
                                job_parent,
                                &accession,
                                instance,
                                started,
                                now.as_secs(),
                                "ok",
                                &result,
                            );
                            recorder.counter_add("jobs_completed", 1);
                            recorder.observe(
                                "align_secs_per_accession",
                                SECS_BUCKETS,
                                result.stage_secs.align_secs,
                            );
                            if result.early_stopped() {
                                // The decision landed at the end of the (cut
                                // short) align stage.
                                let decided_at = started
                                    + result.stage_secs.prefix_secs(2)
                                    + result.stage_secs.align_secs;
                                let mut fields = vec![
                                    ("accession", JsonValue::from(accession.as_str())),
                                    ("mapping_rate", JsonValue::from(result.mapping_rate)),
                                ];
                                fields.extend(result.early_stop.decision_fields());
                                recorder.event(decided_at, "early_stop", fields);
                                recorder.observe(
                                    "mapping_rate_at_stop",
                                    RATE_BUCKETS,
                                    result.mapping_rate,
                                );
                            }
                            if slo_on {
                                // Campaigns submit everything at t=0, so the
                                // completion instant *is* the turnaround; the
                                // cost sample prices the successful attempt at
                                // the settle-time hourly rate.
                                recorder.sketch_observe(
                                    "slo_turnaround_secs",
                                    slo_alpha,
                                    now.as_secs(),
                                );
                                recorder.sketch_observe(
                                    "slo_cost_per_accession_usd",
                                    slo_alpha,
                                    duration * slo_rate / 3600.0,
                                );
                                slo_completed_at.insert(accession.clone(), now.as_secs());
                            }
                            if recovery_on {
                                // The checkpoint is consumed; any resumed
                                // seconds are now provably salvaged compute.
                                ckpt_store.remove(&accession);
                                if resumed_secs > 0.0 {
                                    salvaged_secs_total += resumed_secs;
                                    *salvaged_by_acc
                                        .entry(accession.clone())
                                        .or_insert(0.0) += resumed_secs;
                                    if let Some(p) = pending_salvage.get_mut(&accession) {
                                        *p = (*p - resumed_secs).max(0.0);
                                    }
                                }
                            }
                            // Completing an accession that had already been
                            // dead-lettered re-resolves it as completed.
                            dl_only.remove(&accession);
                            completion_order.push(accession);
                            slot.insert(*result);
                        } else {
                            emit_job_spans(
                                &recorder,
                                job_parent,
                                &accession,
                                instance,
                                started,
                                now.as_secs(),
                                "duplicate",
                                &result,
                            );
                            duplicate_completions += 1;
                            wasted_secs += duration;
                            if slo_on {
                                *slo_retry_waste.entry(accession.clone()).or_insert(0.0) +=
                                    duration;
                            }
                        }
                        events.schedule(now + d + deleted.backoff, Event::Poll(instance));
                    }
                    Err(_) => {
                        // Result upload exhausted its retries: the job's output
                        // is lost and the message re-delivers after its lease
                        // expires, so another worker redoes the work.
                        emit_job_spans(
                            &recorder,
                            job_parent,
                            &accession,
                            instance,
                            started,
                            now.as_secs(),
                            "upload_lost",
                            &result,
                        );
                        recorder.event(
                            now.as_secs(),
                            "upload_lost",
                            vec![
                                ("accession", JsonValue::from(accession.as_str())),
                                ("instance", JsonValue::from(instance.0)),
                            ],
                        );
                        wasted_secs += duration;
                        if slo_on {
                            *slo_retry_waste.entry(accession.clone()).or_insert(0.0) += duration;
                        }
                        events.schedule(now + cfg.poll_interval, Event::Poll(instance));
                    }
                }
            }
            Event::WorkerCrash { instance, epoch, accession, wasted_secs: w } => {
                // The worker process dies mid-job (the instance survives and
                // re-polls); the in-flight message re-delivers after its lease
                // expires. A stale epoch means the job already finished.
                if workers[widx(instance)].busy_epoch == Some(epoch) {
                    workers[widx(instance)].busy_epoch = None;
                    workers[widx(instance)].inflight = None;
                    busy_count -= 1;
                    busy_series.record(now.as_secs(), busy_count as f64);
                    let parent = workers[widx(instance)].span.unwrap_or(campaign_span);
                    recorder.span_closed(
                        "job",
                        parent,
                        now.as_secs() - w,
                        now.as_secs(),
                        &[("accession", accession.clone()), ("outcome", "crashed".to_string())],
                    );
                    recorder.event(
                        now.as_secs(),
                        "worker_crash",
                        vec![
                            ("accession", JsonValue::from(accession.as_str())),
                            ("instance", JsonValue::from(instance.0)),
                            ("wasted_secs", JsonValue::from(w)),
                        ],
                    );
                    wasted_secs += w;
                    if slo_on {
                        *slo_retry_waste.entry(accession.clone()).or_insert(0.0) += w;
                    }
                    events.schedule(now + cfg.poll_interval, Event::Poll(instance));
                }
            }
            Event::SpotNotice { instance, reclaim_at, source } => {
                // The two-minute warning (only scheduled on recovery
                // campaigns). The instance enters Draining: the Poll guard only
                // fires on Running instances, so it stops pulling messages; a
                // busy worker checkpoints its progress and hands its in-flight
                // message straight back (visibility → 0) instead of letting the
                // lease lapse after the reclaim.
                let state = asg.instance(instance).map(|i| i.state);
                if !matches!(
                    state,
                    Some(InstanceState::Initializing | InstanceState::Running)
                ) {
                    // Already terminated (an earlier reclaim beat this notice)
                    // or already draining (overlapping notices): nothing to do.
                    continue;
                }
                if let Some(inst) = asg.instance_mut(instance) {
                    inst.mark_draining().map_err(AtlasError::Cloud)?;
                }
                recorder.event(
                    now.as_secs(),
                    "spot_notice",
                    vec![
                        ("instance", JsonValue::from(instance.0)),
                        ("source", JsonValue::from(source.name())),
                        ("lead_secs", JsonValue::from(reclaim_at.as_secs() - now.as_secs())),
                    ],
                );
                recorder.counter_add("spot_notices", 1);
                if workers[widx(instance)].busy_epoch.take().is_some() {
                    busy_count -= 1;
                    busy_series.record(now.as_secs(), busy_count as f64);
                    let job = workers[widx(instance)]
                        .inflight
                        .take()
                        .expect("recovery tracks every busy worker's in-flight job");
                    let parent = workers[widx(instance)].span.unwrap_or(campaign_span);
                    recorder.span_closed(
                        "job",
                        parent,
                        job.started_secs,
                        now.as_secs(),
                        &[
                            ("accession", job.accession.clone()),
                            ("outcome", "drained".to_string()),
                        ],
                    );
                    let elapsed = now.as_secs() - job.started_secs;
                    // Align-stage seconds this attempt completed before the
                    // notice; pre-align stages are not resumable.
                    let align_done = (elapsed - job.stage_secs.prefix_secs(2))
                        .clamp(0.0, job.stage_secs.align_secs);
                    let mut checkpointed = 0.0f64;
                    if !results.contains_key(&job.accession) && align_done > 0.0 {
                        if injector.roll(instance.0, FaultOp::CheckpointPut) {
                            // The checkpoint upload failed inside the notice
                            // window; the progress will be redone.
                            recorder.event(
                                now.as_secs(),
                                "checkpoint_failed",
                                vec![
                                    ("accession", JsonValue::from(job.accession.as_str())),
                                    ("instance", JsonValue::from(instance.0)),
                                ],
                            );
                        } else {
                            let offset = job.resumed_from + align_done;
                            ckpt_store.put(&job.accession, offset, now.as_secs());
                            checkpointed = align_done;
                            *pending_salvage.entry(job.accession.clone()).or_insert(0.0) +=
                                align_done;
                            recorder.event(
                                now.as_secs(),
                                "checkpoint",
                                vec![
                                    ("accession", JsonValue::from(job.accession.as_str())),
                                    ("instance", JsonValue::from(instance.0)),
                                    ("offset_secs", JsonValue::from(offset)),
                                ],
                            );
                            recorder.counter_add("checkpoints_written", 1);
                        }
                    }
                    // Checkpointed seconds stay optimistically out of the
                    // waste pool; if no resumed attempt reuses them,
                    // settlement reclassifies the leftover as lost.
                    let waste_now = (elapsed - checkpointed).max(0.0);
                    wasted_secs += waste_now;
                    if slo_on {
                        *slo_retry_waste.entry(job.accession.clone()).or_insert(0.0) +=
                            waste_now;
                    }
                    recorder.event(
                        now.as_secs(),
                        "drain",
                        vec![
                            ("instance", JsonValue::from(instance.0)),
                            ("accession", JsonValue::from(job.accession.as_str())),
                            ("handed_back", JsonValue::from(true)),
                            ("checkpointed_secs", JsonValue::from(checkpointed)),
                        ],
                    );
                    recorder.counter_add("drains", 1);
                    // Graceful hand-back: visibility → 0 and the receipt is
                    // invalidated, so the message re-delivers immediately. A
                    // stale receipt (the broker already re-delivered) is fine.
                    let _ = sqs.release(job.receipt);
                } else {
                    recorder.event(
                        now.as_secs(),
                        "drain",
                        vec![
                            ("instance", JsonValue::from(instance.0)),
                            ("handed_back", JsonValue::from(false)),
                        ],
                    );
                    recorder.counter_add("drains", 1);
                }
            }
            Event::Interruption(id) => {
                if matches!(asg.terminate(id, now), Ok(true)) {
                    interruptions += 1;
                    let was_busy = workers[widx(id)].busy_epoch.take().is_some();
                    workers[widx(id)].inflight = None;
                    if was_busy {
                        busy_count -= 1;
                    }
                    fleet_series.record(now.as_secs(), asg.active_count() as f64);
                    busy_series.record(now.as_secs(), busy_count as f64);
                    if let Some(s) = workers[widx(id)].span.take() {
                        recorder.span_end(s, now.as_secs());
                    }
                    recorder.event(
                        now.as_secs(),
                        "spot_interruption",
                        vec![
                            ("instance", JsonValue::from(id.0)),
                            ("was_busy", JsonValue::from(was_busy)),
                        ],
                    );
                    recorder.counter_add("spot_interruptions", 1);
                }
            }
        }
    }

    let end = events.now();
    // Settle: terminate survivors and charge everyone.
    let mut cost =
        if cfg.spot { CostTracker::with_spot(cfg.spot_market) } else { CostTracker::on_demand() };
    let instances_launched = asg.instances().len();
    let ids: Vec<InstanceId> = asg.instances().iter().map(|i| i.id).collect();
    for id in ids {
        let _ = asg.terminate(id, end);
        if let Some(s) = workers[widx(id)].span.take() {
            recorder.span_end(s, end.as_secs());
        }
    }
    for inst in asg.instances() {
        cost.charge(inst, end);
    }
    // Checkpointed progress no resumed attempt ever reused is lost compute
    // after all: reclassify the leftover so every drained second is accounted
    // exactly once (salvaged or wasted).
    for (a, p) in &pending_salvage {
        if *p > 0.0 {
            wasted_secs += *p;
            if slo_on {
                *slo_retry_waste.entry(a.clone()).or_insert(0.0) += *p;
            }
        }
    }
    cost.attribute_waste(cfg.instance_type, cfg.spot, wasted_secs);

    // At-least-once accounting: every accession is completed or dead-lettered.
    let dead_lettered: Vec<String> = sqs
        .dead_letters()
        .iter()
        .filter(|a| !results.contains_key(a.as_str()))
        .cloned()
        .collect();
    debug_assert_eq!(
        dead_lettered.iter().collect::<BTreeSet<_>>(),
        dl_only.iter().collect::<BTreeSet<_>>(),
        "maintained dead-letter set diverged from the queue's"
    );
    for a in accessions {
        if !results.contains_key(a) && !dead_lettered.iter().any(|d| d == a) {
            return Err(AtlasError::Conservation(format!(
                "accession {a} neither completed nor dead-lettered"
            )));
        }
    }
    if results.len() + dead_lettered.len() != target {
        return Err(AtlasError::Conservation(format!(
            "{} completed + {} dead-lettered != {} accessions",
            results.len(),
            dead_lettered.len(),
            target
        )));
    }

    let fleet_instance_secs = fleet_series.integral_until(end.as_secs());
    let busy_instance_secs = busy_series.integral_until(end.as_secs());
    let mean_fleet_size = fleet_series.time_weighted_mean(end.as_secs());
    let busy_fraction =
        if fleet_instance_secs > 0.0 { busy_instance_secs / fleet_instance_secs } else { 0.0 };

    let mut savings = SavingsSummary::default();
    let ordered: Vec<PipelineResult> =
        completion_order.iter().map(|a| results.get(a).expect("recorded").clone()).collect();
    for r in &ordered {
        savings.add(&r.early_stop);
    }
    let normalized = build_normalized(&ordered);
    if let Some(n) = &normalized {
        let attrs = n.span_attrs();
        recorder.span_closed("deseq", campaign_span, end.as_secs(), end.as_secs(), &attrs);
        recorder.event(
            end.as_secs(),
            "deseq_normalized",
            attrs.iter().map(|(k, v)| (*k, JsonValue::from(v.as_str()))).collect(),
        );
    }
    // SLO settlement: budget-remaining and ledger-rollup gauges land in the
    // metrics snapshot (and from there in the OpenMetrics dump), and the
    // attribution ledger decomposes each completed accession's turnaround and
    // dollars. Pure observer: everything here is computed from quantities the
    // engine already tracked.
    let slo_report = if slo_on {
        let objectives = monitor.as_ref().map(|m| m.slo_status()).unwrap_or_default();
        for s in &objectives {
            recorder.gauge_set_at(
                end.as_secs(),
                &format!("slo_budget_remaining:{}", s.id),
                s.budget_remaining,
            );
        }
        let inputs: Vec<CompletedAccession> = completion_order
            .iter()
            .map(|a| CompletedAccession {
                accession: a.clone(),
                queue_wait_secs: slo_queue_waits.get(a).copied().unwrap_or(0.0),
                stage_secs: results.get(a).expect("recorded").stage_secs,
                ended_secs: slo_completed_at.get(a).copied().unwrap_or(end.as_secs()),
                retry_waste_secs: slo_retry_waste.get(a).copied().unwrap_or(0.0),
                salvaged_secs: salvaged_by_acc.get(a).copied().unwrap_or(0.0),
            })
            .collect();
        let (ledger, totals) = build_ledger(&inputs, slo_rate, cost.report().total_usd);
        recorder.gauge_set_at(end.as_secs(), "slo_ledger_compute_usd", totals.compute_usd);
        recorder.gauge_set_at(end.as_secs(), "slo_ledger_retry_usd", totals.retry_usd);
        recorder.gauge_set_at(
            end.as_secs(),
            "slo_ledger_idle_amortized_usd",
            totals.idle_amortized_usd,
        );
        recorder.gauge_set_at(
            end.as_secs(),
            "slo_ledger_retry_waste_secs",
            totals.retry_waste_secs,
        );
        if recovery_on {
            // Only on recovery campaigns, so recovery-off OpenMetrics dumps
            // (and their goldens) are byte-identical to pre-recovery builds.
            recorder.gauge_set_at(end.as_secs(), "slo_ledger_salvaged_secs", totals.salvaged_secs);
            recorder.gauge_set_at(end.as_secs(), "slo_ledger_lost_secs", totals.lost_secs);
        }
        Some(SloReport { objectives, ledger, totals })
    } else {
        None
    };
    recorder.span_end(campaign_span, end.as_secs());
    let campaign_telemetry = cfg.telemetry.then(|| telemetry::summarize(&recorder));

    Ok(CampaignReport {
        completed: ordered,
        makespan: end - SimTime::ZERO,
        cost: cost.report().clone(),
        instances_launched,
        interruptions,
        redeliveries,
        savings,
        normalized,
        init_secs_per_instance: cfg.init_secs(),
        fleet_timeline: timeline,
        mean_fleet_size,
        busy_fraction,
        dead_lettered,
        fault_counters: injector.tallies().clone(),
        duplicate_completions,
        wasted_compute_secs: wasted_secs,
        salvaged_compute_secs: salvaged_secs_total,
        telemetry: campaign_telemetry,
        alerts: monitor.map(|m| m.alerts()).unwrap_or_default(),
        sim_events: n_events,
        slo: slo_report,
    })
}
