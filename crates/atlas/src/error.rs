//! Error type for the pipeline layer.

use std::fmt;

/// Errors from pipeline or campaign execution.
#[derive(Debug)]
pub enum AtlasError {
    /// Aligner-layer error.
    Star(star_aligner::StarError),
    /// SRA-layer error.
    Sra(sra_sim::SraError),
    /// Cloud-layer error.
    Cloud(cloudsim::CloudError),
    /// Normalization error.
    Deseq(deseq_norm::DeseqError),
    /// Inconsistent configuration.
    InvalidParams(String),
    /// The campaign's at-least-once accounting failed: some accession ended neither
    /// completed nor dead-lettered (this is a simulator bug, never fault-induced).
    Conservation(String),
}

impl fmt::Display for AtlasError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AtlasError::Star(e) => write!(f, "star: {e}"),
            AtlasError::Sra(e) => write!(f, "sra: {e}"),
            AtlasError::Cloud(e) => write!(f, "cloud: {e}"),
            AtlasError::Deseq(e) => write!(f, "deseq: {e}"),
            AtlasError::InvalidParams(m) => write!(f, "invalid parameters: {m}"),
            AtlasError::Conservation(m) => write!(f, "conservation violated: {m}"),
        }
    }
}

impl std::error::Error for AtlasError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AtlasError::Star(e) => Some(e),
            AtlasError::Sra(e) => Some(e),
            AtlasError::Cloud(e) => Some(e),
            AtlasError::Deseq(e) => Some(e),
            AtlasError::InvalidParams(_) | AtlasError::Conservation(_) => None,
        }
    }
}

impl From<star_aligner::StarError> for AtlasError {
    fn from(e: star_aligner::StarError) -> Self {
        AtlasError::Star(e)
    }
}
impl From<sra_sim::SraError> for AtlasError {
    fn from(e: sra_sim::SraError) -> Self {
        AtlasError::Sra(e)
    }
}
impl From<cloudsim::CloudError> for AtlasError {
    fn from(e: cloudsim::CloudError) -> Self {
        AtlasError::Cloud(e)
    }
}
impl From<deseq_norm::DeseqError> for AtlasError {
    fn from(e: deseq_norm::DeseqError) -> Self {
        AtlasError::Deseq(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_and_display() {
        let e: AtlasError = deseq_norm::DeseqError::EmptyMatrix.into();
        assert!(e.to_string().contains("deseq"));
        assert!(std::error::Error::source(&e).is_some());
        let e = AtlasError::InvalidParams("x".into());
        assert!(std::error::Error::source(&e).is_none());
    }
}
