//! Instance right-sizing (§III-A's corollary).
//!
//! STAR loads the whole genome index into memory, so the index size dictates the
//! instance's RAM: the release-108 toplevel index (85 GiB) forces a 128 GiB
//! `r6a.4xlarge`; the release-111 index (29.5 GiB) fits a 32 GiB `r6a.xlarge` at a
//! quarter of the price. [`RightSizer`] maps an index memory footprint to the
//! cheapest catalog type that fits it with working headroom.

use cloudsim::instance::InstanceType;
use serde::{Deserialize, Serialize};

/// Chooses instance types for a given index footprint.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RightSizer {
    /// Index size in GiB as loaded into shared memory.
    pub index_gib: f64,
    /// Multiplier for working memory on top of the index (alignment buffers, OS,
    /// FASTQ staging). STAR guidance is index + ~10–30 %.
    pub headroom_factor: f64,
    /// Minimum vCPUs the pipeline wants (STAR scales well to 16).
    pub min_vcpus: u32,
}

impl RightSizer {
    /// Sizer for an index of `index_gib` GiB with default headroom.
    pub fn for_index_gib(index_gib: f64) -> RightSizer {
        RightSizer { index_gib, headroom_factor: 1.25, min_vcpus: 4 }
    }

    /// Sizer from a measured synthetic index, scaled to paper dimensions.
    ///
    /// `linear_scale` is the ratio of real genome bases to simulated bases (e.g.
    /// `3.1e9 / simulated_chromosome_total`). Because the scale is
    /// release-independent — derived from the chromosome mass, which is identical
    /// across releases — the 108-vs-111 index-size gap carries through to the
    /// projected GiB figures and hence to the instance choice.
    pub fn from_index_stats(stats: &star_aligner::IndexStats, linear_scale: f64) -> RightSizer {
        let index_gib = stats.total_bytes() as f64 * linear_scale / (1u64 << 30) as f64;
        RightSizer::for_index_gib(index_gib)
    }

    /// Memory requirement in GiB.
    pub fn required_gib(&self) -> f64 {
        self.index_gib * self.headroom_factor
    }

    /// Cheapest catalog type that fits.
    pub fn choose(&self) -> Option<&'static InstanceType> {
        InstanceType::cheapest_fitting(self.required_gib(), self.min_vcpus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizes_select_paper_instances() {
        // Release 108: 85 GiB index × 1.25 headroom = 106 GiB → r6a.4xlarge (128 GiB),
        // the paper's testbed type.
        let r108 = RightSizer::for_index_gib(85.0);
        assert_eq!(r108.choose().unwrap().name, "r6a.4xlarge");
        // Release 111: 29.5 GiB × 1.25 = 37 GiB → r6a.2xlarge (64 GiB), half the price.
        let r111 = RightSizer::for_index_gib(29.5);
        assert_eq!(r111.choose().unwrap().name, "r6a.2xlarge");
        let saving = 1.0
            - r111.choose().unwrap().on_demand_hourly_usd / r108.choose().unwrap().on_demand_hourly_usd;
        assert!(saving > 0.4, "right-sizing must cut hourly cost substantially: {saving}");
    }

    #[test]
    fn small_index_fits_smallest_r_instance() {
        let s = RightSizer::for_index_gib(20.0);
        assert_eq!(s.choose().unwrap().name, "r6a.xlarge");
    }

    #[test]
    fn impossible_requirement_returns_none() {
        assert!(RightSizer::for_index_gib(100_000.0).choose().is_none());
    }

    #[test]
    fn headroom_scales_requirement() {
        let mut s = RightSizer::for_index_gib(50.0);
        s.headroom_factor = 2.0;
        assert!((s.required_gib() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn from_index_stats_scales_linearly() {
        // A synthetic index of 450k bases occupying ~4.3 bytes/base projects to
        // ~12.4 GiB at human scale (scale = 3.1e9 / 450k sim bases).
        let stats = star_aligner::IndexStats {
            genome_bytes: 112_500,
            sa_bytes: 1_800_000,
            prefix_bytes: 32_768,
            sjdb_bytes: 4_000,
            genome_len: 450_000,
            n_contigs: 10,
        };
        let scale = 3.1e9 / 450_000.0;
        let sizer = RightSizer::from_index_stats(&stats, scale);
        let expect_gib = stats.total_bytes() as f64 * scale / (1u64 << 30) as f64;
        assert!((sizer.index_gib - expect_gib).abs() < 1e-6, "{} vs {expect_gib}", sizer.index_gib);
        assert!(sizer.index_gib > 10.0 && sizer.index_gib < 15.0);
        // A release-108-style index (2.9x the bytes) at the SAME scale projects 2.9x
        // the GiB — the gap survives scaling.
        let mut big = stats;
        big.sa_bytes *= 3;
        let bigger = RightSizer::from_index_stats(&big, scale);
        assert!(bigger.index_gib > 2.0 * sizer.index_gib);
    }

    #[test]
    fn vcpu_floor_is_respected() {
        let mut s = RightSizer::for_index_gib(20.0);
        s.min_vcpus = 32;
        let t = s.choose().unwrap();
        assert!(t.vcpus >= 32);
    }
}
