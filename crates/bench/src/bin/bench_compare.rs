//! Bench-regression gate: compare two directories of criterion-shim JSON reports.
//!
//! ```text
//! bench_compare <baseline_dir> <fresh_dir> [--tolerance 0.25]
//! bench_compare --overhead <dir> <base.json> <with.json> [--tolerance 0.02]
//! bench_compare --attribute <logA> <logB>
//! ```
//!
//! Directory mode: every `BENCH_*.json` in the baseline directory (telemetry
//! side-files excluded) must exist in the fresh directory, and every benchmark id
//! in it must not be slower than `mean_secs * (1 + tolerance)`. Exit code 1 on any
//! regression or missing report, 0 otherwise. The committed baseline lives in
//! `benchmarks/baseline/` and was captured with the same pinned-seed fixtures the
//! benches use (`BENCH_JSON_DIR=... cargo bench -p atlas-bench`), so a comparison
//! is apples-to-apples on any machine as long as both sides ran on that machine.
//!
//! Overhead mode (`--overhead`): compare two named reports from the *same*
//! directory — a feature-off base and a feature-on variant captured in the same
//! bench run — id by id, against a tight tolerance. This is the monitor-overhead
//! gate: `BENCH_cloud_campaign_monitor.json` must stay within 2% of
//! `BENCH_cloud_campaign.json`.
//!
//! Attribution mode (`--attribute`): when a regression *does* fire, compare the
//! two runs' saved NDJSON event logs (`cloud_atlas --log-out`, or any recorded
//! campaign log) and print the `telemetry::diff` waterfall — which phases,
//! accessions and instances moved — so a CI bench regression ships with a
//! root-cause table instead of a bare ratio.
//!
//! The parser is deliberately hand-rolled for the shim's flat schema
//! (`{"group":...,"results":[{"id","mean_secs","iters","throughput_per_sec"}]}`):
//! the workspace carries no JSON-parsing dependency, and the shim's writer and
//! this reader are pinned to the same format by the round-trip test in the shim.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// One benchmark entry: `(id, mean_secs)`.
type Entry = (String, f64);

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut positional: Vec<PathBuf> = Vec::new();
    let mut tolerance = None::<f64>;
    let mut overhead = false;
    let mut attribute = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--help" | "-h" => return help(),
            "--tolerance" => {
                let v = args.next().unwrap_or_default();
                match v.parse::<f64>() {
                    Ok(t) if t >= 0.0 => tolerance = Some(t),
                    _ => return usage(&format!("bad --tolerance value {v:?}")),
                }
            }
            "--overhead" => overhead = true,
            "--attribute" => attribute = true,
            flag if flag.starts_with('-') => {
                return usage(&format!("unknown flag {flag:?}"));
            }
            _ => positional.push(PathBuf::from(a)),
        }
    }

    if attribute {
        let [log_a, log_b] = positional.as_slice() else {
            return usage("--attribute needs <logA> <logB> (saved NDJSON event logs)");
        };
        return attribute_logs(log_a, log_b);
    }

    if overhead {
        let [dir, base, with] = positional.as_slice() else {
            return usage("--overhead needs <dir> <base.json> <with.json>");
        };
        return compare_overhead(dir, base, with, tolerance.unwrap_or(0.02));
    }

    let tolerance = tolerance.unwrap_or(0.25);
    let (baseline, fresh) = match positional.as_slice() {
        [b, f] => (b.clone(), f.clone()),
        _ => return usage("missing directories"),
    };

    let mut reports: Vec<PathBuf> = match std::fs::read_dir(&baseline) {
        Ok(rd) => rd
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
                name.starts_with("BENCH_")
                    && name.ends_with(".json")
                    && !name.ends_with("_telemetry.json")
            })
            .collect(),
        Err(e) => return usage(&format!("cannot read {}: {e}", baseline.display())),
    };
    reports.sort();
    if reports.is_empty() {
        eprintln!("bench_compare: no BENCH_*.json reports in {}", baseline.display());
        return ExitCode::FAILURE;
    }

    let mut failures = 0usize;
    let mut table = String::new();
    for base_path in &reports {
        let name = base_path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        let fresh_path = fresh.join(name);
        let (group, base_entries) = match load_report(base_path) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("bench_compare: {}: {e}", base_path.display());
                failures += 1;
                continue;
            }
        };
        let fresh_entries = match load_report(&fresh_path) {
            Ok((_, entries)) => entries,
            Err(e) => {
                eprintln!("bench_compare: {}: {e} (bench not re-run?)", fresh_path.display());
                failures += 1;
                continue;
            }
        };
        for (id, base_mean) in &base_entries {
            let Some((_, fresh_mean)) = fresh_entries.iter().find(|(fid, _)| fid == id) else {
                eprintln!("bench_compare: {group}/{id}: missing from fresh report");
                failures += 1;
                continue;
            };
            let ratio = fresh_mean / base_mean;
            let verdict = if *fresh_mean > base_mean * (1.0 + tolerance) {
                failures += 1;
                "REGRESSION"
            } else if ratio < 1.0 {
                "faster"
            } else {
                "ok"
            };
            let _ = writeln!(
                table,
                "{group}/{id}: {base_mean:.6}s -> {fresh_mean:.6}s ({ratio:.2}x base) {verdict}"
            );
        }
    }
    print!("{table}");
    if failures > 0 {
        eprintln!("bench_compare: {failures} regression(s)/missing entry(ies) beyond {tolerance:.0}% tolerance", tolerance = tolerance * 100.0);
        ExitCode::FAILURE
    } else {
        println!("bench_compare: all benchmarks within {:.0}% of baseline", tolerance * 100.0);
        ExitCode::SUCCESS
    }
}

const USAGE: &str = "\
usage: bench_compare <baseline_dir> <fresh_dir> [--tolerance 0.25]
       bench_compare --overhead <dir> <base.json> <with.json> [--tolerance 0.02]
       bench_compare --attribute <logA> <logB>
       bench_compare --help

modes:
  directory  every BENCH_*.json in <baseline_dir> must exist in <fresh_dir>
             and no benchmark id may be slower than mean*(1+tolerance)
  --overhead compare two named reports from the same directory id-by-id
             against a tight budget (the monitor/SLO 2% gates)
  --attribute diff two saved NDJSON campaign event logs and print the
             telemetry::diff attribution waterfall (root cause for a
             regression the other modes only detect)";

fn usage(err: &str) -> ExitCode {
    eprintln!("bench_compare: {err}");
    eprintln!("{USAGE}");
    ExitCode::FAILURE
}

fn help() -> ExitCode {
    println!("bench_compare: criterion-shim bench-regression gate");
    println!("{USAGE}");
    ExitCode::SUCCESS
}

/// Attribution mode: diff two saved event logs and print the waterfall.
fn attribute_logs(log_a: &Path, log_b: &Path) -> ExitCode {
    let load = |path: &Path| -> Result<telemetry::RunProfile, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        telemetry::RunProfile::from_event_log(&path.display().to_string(), &text)
            .map_err(|e| format!("{}: {e}", path.display()))
    };
    let a = match load(log_a) {
        Ok(p) => p,
        Err(e) => return usage(&e),
    };
    let b = match load(log_b) {
        Ok(p) => p,
        Err(e) => return usage(&e),
    };
    print!("{}", telemetry::diff(&a, &b).render_text());
    ExitCode::SUCCESS
}

/// Overhead mode: `with` must match `base` id-for-id within `tolerance`, both
/// loaded from the same directory (so both means came from the same machine and
/// the same bench invocation).
fn compare_overhead(dir: &Path, base: &Path, with: &Path, tolerance: f64) -> ExitCode {
    let (base_group, base_entries) = match load_report(&dir.join(base)) {
        Ok(r) => r,
        Err(e) => return usage(&format!("{}: {e}", dir.join(base).display())),
    };
    let (with_group, with_entries) = match load_report(&dir.join(with)) {
        Ok(r) => r,
        Err(e) => return usage(&format!("{}: {e}", dir.join(with).display())),
    };
    let mut failures = 0usize;
    for (id, base_mean) in &base_entries {
        let Some((_, with_mean)) = with_entries.iter().find(|(wid, _)| wid == id) else {
            eprintln!("bench_compare: {with_group}/{id}: missing from {}", with.display());
            failures += 1;
            continue;
        };
        let overhead = with_mean / base_mean - 1.0;
        let verdict = if overhead > tolerance {
            failures += 1;
            "TOO SLOW"
        } else {
            "ok"
        };
        println!(
            "{base_group}/{id} -> {with_group}/{id}: {base_mean:.6}s -> {with_mean:.6}s \
             ({overhead:+.2}% overhead) {verdict}",
            overhead = overhead * 100.0
        );
    }
    if failures > 0 {
        eprintln!(
            "bench_compare: {failures} entry(ies) exceed {:.1}% overhead budget",
            tolerance * 100.0
        );
        ExitCode::FAILURE
    } else {
        println!("bench_compare: overhead within {:.1}% budget", tolerance * 100.0);
        ExitCode::SUCCESS
    }
}

/// Parse one criterion-shim report: `{"group":"...","results":[...]}`.
fn load_report(path: &Path) -> Result<(String, Vec<Entry>), String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let group = extract_string(&text, "group").ok_or("missing \"group\" field")?;
    let mut entries = Vec::new();
    // Each result object starts with its "id" field; scan object by object.
    let mut rest = text.as_str();
    while let Some(obj_start) = rest.find("{\"id\":") {
        let obj = &rest[obj_start..];
        let end = obj.find('}').ok_or("unterminated result object")?;
        let obj_text = &obj[..=end];
        let id = extract_string(obj_text, "id").ok_or("result without id")?;
        let mean = extract_number(obj_text, "mean_secs").ok_or("result without mean_secs")?;
        if !(mean.is_finite() && mean >= 0.0) {
            return Err(format!("{id}: bad mean_secs {mean}"));
        }
        entries.push((id, mean));
        rest = &obj[end..];
    }
    if entries.is_empty() {
        return Err("no results".into());
    }
    Ok((group, entries))
}

/// Extract `"key":"value"` (shim output never escapes quotes in ids/groups).
fn extract_string(text: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = text.find(&pat)? + pat.len();
    let end = text[start..].find('"')?;
    Some(text[start..start + end].to_string())
}

/// Extract `"key":<number>`.
fn extract_number(text: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = text.find(&pat)? + pat.len();
    let tail = &text[start..];
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}
