//! Regenerate the paper's figures and tables.
//!
//! ```text
//! experiments [--scale test|paper] <fig3|index-table|fig4|cloud-campaign|right-size|all>
//! ```
//!
//! Each subcommand prints the table corresponding to one paper artifact; see
//! DESIGN.md's experiment index and EXPERIMENTS.md for paper-vs-measured records.

use atlas_bench::{ensembl_params, fig3_config, fig4_config, Scale};
use atlas_pipeline::experiments::{
    checkpoint_analysis, cloud_campaign, fig3_genome_release, fig4_early_stopping,
    hash_seed_tradeoff, index_comparison, pseudo_early_stopping, right_size_comparison,
    spot_recovery, CampaignExperimentConfig, CheckpointAnalysisConfig, PseudoStudyConfig,
    SpotRecoveryConfig,
};
use atlas_pipeline::report;
use sra_sim::accession::CatalogParams;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Paper;
    let mut commands: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let v = it.next().unwrap_or_default();
                scale = match Scale::parse(&v) {
                    Some(s) => s,
                    None => {
                        eprintln!("unknown scale {v:?}; use test|paper");
                        std::process::exit(2);
                    }
                };
            }
            "--help" | "-h" => {
                println!(
                    "usage: experiments [--scale test|paper] <fig3|index-table|hash-tradeoff|fig4|checkpoint-analysis|cloud-campaign|right-size|spot-recovery|pseudo-early-stop|all>"
                );
                return;
            }
            other => commands.push(other.to_string()),
        }
    }
    if commands.is_empty() {
        commands.push("all".into());
    }

    for cmd in &commands {
        match cmd.as_str() {
            "fig3" => run_fig3(scale),
            "index-table" => run_index_table(scale),
            "hash-tradeoff" => run_hash_tradeoff(scale),
            "fig4" => run_fig4(scale),
            "checkpoint-analysis" => run_checkpoint_analysis(scale),
            "cloud-campaign" => run_campaign(scale),
            "right-size" => run_right_size(scale),
            "spot-recovery" => run_spot_recovery(scale),
            "pseudo-early-stop" => run_pseudo_study(scale),
            "all" => {
                run_fig3(scale);
                run_index_table(scale);
                run_hash_tradeoff(scale);
                run_fig4(scale);
                run_checkpoint_analysis(scale);
                run_campaign(scale);
                run_right_size(scale);
                run_spot_recovery(scale);
                run_pseudo_study(scale);
            }
            other => {
                eprintln!("unknown experiment {other:?}");
                std::process::exit(2);
            }
        }
    }
}

fn banner(name: &str) {
    println!("\n==========================================================");
    println!("== {name}");
    println!("==========================================================");
}

fn run_fig3(scale: Scale) {
    banner("E1 / Fig. 3 — genome release 108 vs 111");
    let cfg = fig3_config(scale);
    match fig3_genome_release(&cfg) {
        Ok(r) => print!("{}", report::render_fig3(&r)),
        Err(e) => eprintln!("fig3 failed: {e}"),
    }
}

fn run_index_table(scale: Scale) {
    banner("E2 / §III-A — index comparison table");
    match index_comparison(ensembl_params(scale)) {
        Ok(c) => print!("{}", report::render_index_table(&c)),
        Err(e) => eprintln!("index-table failed: {e}"),
    }
}

fn run_hash_tradeoff(scale: Scale) {
    banner("Hash-seeding tradeoff — table bytes vs seed-collection speedup");
    match hash_seed_tradeoff(ensembl_params(scale), &[12, 14, 16, 18, 20]) {
        Ok(r) => print!("{}", report::render_hash_tradeoff(&r)),
        Err(e) => eprintln!("hash-tradeoff failed: {e}"),
    }
}

fn run_fig4(scale: Scale) {
    banner("E3 / Fig. 4 — early stopping savings");
    let cfg = fig4_config(scale);
    match fig4_early_stopping(&cfg) {
        Ok(r) => print!("{}", report::render_fig4(&r)),
        Err(e) => eprintln!("fig4 failed: {e}"),
    }
}

fn run_checkpoint_analysis(scale: Scale) {
    banner("E3b — checkpoint analysis (\"10% of reads is enough\")");
    let cfg = match scale {
        Scale::Test => CheckpointAnalysisConfig {
            ensembl: ensembl_params(scale),
            catalog: sra_sim::accession::CatalogParams {
                n_accessions: 40,
                bulk_spots_median: 800,
                ..sra_sim::accession::CatalogParams::default()
            },
            spot_cap: Some(1_000),
            ..CheckpointAnalysisConfig::default()
        },
        Scale::Paper => CheckpointAnalysisConfig { ensembl: ensembl_params(scale), ..CheckpointAnalysisConfig::default() },
    };
    match checkpoint_analysis(&cfg) {
        Ok(a) => print!("{}", report::render_checkpoint_analysis(&a)),
        Err(e) => eprintln!("checkpoint-analysis failed: {e}"),
    }
}

fn campaign_config(scale: Scale) -> CampaignExperimentConfig {
    match scale {
        Scale::Test => CampaignExperimentConfig {
            ensembl: ensembl_params(scale),
            catalog: CatalogParams { n_accessions: 30, bulk_spots_median: 600, ..CatalogParams::default() },
            spot_cap: Some(800),
            ..CampaignExperimentConfig::default()
        },
        Scale::Paper => CampaignExperimentConfig {
            ensembl: ensembl_params(scale),
            catalog: CatalogParams { n_accessions: 200, ..CatalogParams::default() },
            spot_cap: Some(2_000),
            ..CampaignExperimentConfig::default()
        },
    }
}

fn run_campaign(scale: Scale) {
    banner("E4 — end-to-end cloud campaign (Fig. 1 + Fig. 2)");
    match cloud_campaign(&campaign_config(scale)) {
        Ok((r, instance)) => print!("{}", report::render_campaign(&r, &instance)),
        Err(e) => eprintln!("cloud-campaign failed: {e}"),
    }
}

fn run_spot_recovery(scale: Scale) {
    banner("E7 — graceful spot degradation: checkpointing under a reclaim storm");
    // The study runs on the modeled workload (align-dominated ~10-minute jobs),
    // so the storm shape is scale-free; test scale just trims the catalog.
    let cfg = match scale {
        Scale::Test => SpotRecoveryConfig { n_accessions: 24, ..SpotRecoveryConfig::default() },
        Scale::Paper => SpotRecoveryConfig::default(),
    };
    match spot_recovery(&cfg) {
        Ok(r) => print!("{}", report::render_spot_recovery(&r)),
        Err(e) => eprintln!("spot-recovery failed: {e}"),
    }
}

fn run_pseudo_study(scale: Scale) {
    banner("E6 — future work: early stopping on a pseudoaligner");
    let cfg = match scale {
        Scale::Test => PseudoStudyConfig {
            ensembl: ensembl_params(scale),
            catalog: CatalogParams {
                n_accessions: 30,
                bulk_spots_median: 800,
                single_cell_fraction: 0.1,
                ..CatalogParams::default()
            },
            spot_cap: Some(1_000),
            ..PseudoStudyConfig::default()
        },
        Scale::Paper => PseudoStudyConfig { ensembl: ensembl_params(scale), ..PseudoStudyConfig::default() },
    };
    match pseudo_early_stopping(&cfg) {
        Ok(r) => print!("{}", report::render_pseudo_study(&r)),
        Err(e) => eprintln!("pseudo-early-stop failed: {e}"),
    }
}

fn run_right_size(scale: Scale) {
    banner("E5 — right-sizing: 108-sized fleet vs 111-sized fleet");
    let mut cfg = campaign_config(scale);
    // Right-sizing compares steady fleets; interruptions add noise.
    cfg.interruptions_per_hour = 0.0;
    match right_size_comparison(&cfg) {
        Ok(c) => print!("{}", report::render_right_size(&c)),
        Err(e) => eprintln!("right-size failed: {e}"),
    }
}
