//! Query and diff saved NDJSON campaign event logs from the command line.
//!
//! ```text
//! trace_query query <log.ndjson> [--kind k1,k2] [--where field=value]
//!                   [--since s] [--until s] [--group-by f1,f2]
//!                   [--agg count|sum:f|min:f|max:f|quantiles:f]... [--json]
//! trace_query diff <logA.ndjson> <logB.ndjson> [--json]
//! ```
//!
//! `query` streams the log once through `telemetry::query` (filter → group-by
//! → count/sum/min/max/quantile aggregates) and prints a fixed-width table, or
//! the equivalent JSON document with `--json`. `diff` extracts a
//! `telemetry::RunProfile` from each log and prints the `telemetry::diff`
//! attribution waterfall: where the seconds moved between the two runs.
//!
//! Both outputs are byte-deterministic for fixed inputs — the query path is
//! golden-pinned in CI against the fixed-seed mini-campaign
//! (`tests/golden/trace_query.txt`). Logs come from
//! `cloud_atlas --log-out <path>` or any saved `CampaignTelemetry::event_log`.

use std::process::ExitCode;

const USAGE: &str = "\
usage: trace_query query <log.ndjson> [filters] [--group-by f1,f2] [--agg ...] [--json]
       trace_query diff <logA.ndjson> <logB.ndjson> [--json]
       trace_query --help

query filters/aggregates:
  --kind k1,k2          keep only these event kinds
  --where field=value   keep only events whose field renders equal to value
  --since s / --until s keep only events inside the time window (sim seconds)
  --group-by f1,f2      group surviving events by these fields
  --agg count           events per group (default)
  --agg sum:field       sum of a numeric field per group
  --agg min:field / max:field
  --agg quantiles:field p50/p95/p99 via a mergeable quantile sketch
  --json                emit the JSON document instead of the text table";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--help") | Some("-h") => {
            println!("trace_query: query and diff saved NDJSON campaign event logs");
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some("query") => run_query(&args[1..]),
        Some("diff") => run_diff(&args[1..]),
        Some(other) => usage(&format!("unknown subcommand {other:?}")),
        None => usage("missing subcommand"),
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("trace_query: {err}");
    eprintln!("{USAGE}");
    ExitCode::FAILURE
}

/// Split off a trailing `--json` flag; everything else passes through.
fn take_json_flag(args: &[String]) -> (Vec<String>, bool) {
    let json = args.iter().any(|a| a == "--json");
    (args.iter().filter(|a| *a != "--json").cloned().collect(), json)
}

fn read_log(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
}

fn run_query(args: &[String]) -> ExitCode {
    let (args, json) = take_json_flag(args);
    let Some((path, query_args)) = args.split_first() else {
        return usage("query needs a <log.ndjson> path");
    };
    let query = match telemetry::Query::parse_args(query_args) {
        Ok(q) => q,
        Err(e) => return usage(&e),
    };
    let log = match read_log(path) {
        Ok(l) => l,
        Err(e) => return usage(&e),
    };
    match query.run(&log) {
        Ok(result) => {
            print!("{}", if json { result.render_json() } else { result.render_text() });
            ExitCode::SUCCESS
        }
        Err(e) => usage(&format!("{path}: {e}")),
    }
}

fn run_diff(args: &[String]) -> ExitCode {
    let (args, json) = take_json_flag(args);
    let [path_a, path_b] = args.as_slice() else {
        return usage("diff needs <logA.ndjson> <logB.ndjson>");
    };
    let profile = |path: &str| -> Result<telemetry::RunProfile, String> {
        let log = read_log(path)?;
        telemetry::RunProfile::from_event_log(path, &log).map_err(|e| format!("{path}: {e}"))
    };
    let a = match profile(path_a) {
        Ok(p) => p,
        Err(e) => return usage(&e),
    };
    let b = match profile(path_b) {
        Ok(p) => p,
        Err(e) => return usage(&e),
    };
    let report = telemetry::diff(&a, &b);
    print!("{}", if json { report.render_json() } else { report.render_text() });
    ExitCode::SUCCESS
}
