//! Shared fixtures for the benchmark harness.
//!
//! Criterion benches must not rebuild multi-second substrates per iteration; this
//! crate centralizes the scaled-down fixture configurations used by every bench and
//! by the `experiments` binary's `--scale test` mode.

use atlas_pipeline::experiments::{Fig3Config, Fig4Config};
use atlas_pipeline::orchestrator::CampaignReport;
use genomics::EnsemblParams;
use sra_sim::accession::CatalogParams;

/// Scale presets for the experiment harness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-fast CI scale.
    Test,
    /// The default scale used for EXPERIMENTS.md numbers (a couple of minutes).
    Paper,
}

impl Scale {
    /// Parse from a CLI word.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "test" => Some(Scale::Test),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }
}

/// Ensembl generator parameters for a scale.
pub fn ensembl_params(scale: Scale) -> EnsemblParams {
    match scale {
        Scale::Test => EnsemblParams { chromosome_len: 60_000, ..EnsemblParams::default() },
        Scale::Paper => EnsemblParams::default(),
    }
}

/// Fig. 3 configuration for a scale (paper: 49 FASTQ files).
pub fn fig3_config(scale: Scale) -> Fig3Config {
    match scale {
        Scale::Test => Fig3Config {
            ensembl: ensembl_params(scale),
            n_files: 6,
            reads_median: 1_000,
            reads_sigma: 0.4,
            ..Fig3Config::default()
        },
        Scale::Paper => Fig3Config { ensembl: ensembl_params(scale), ..Fig3Config::default() },
    }
}

/// Fig. 4 configuration for a scale (paper: 1000 accessions, 38 single-cell).
pub fn fig4_config(scale: Scale) -> Fig4Config {
    match scale {
        Scale::Test => Fig4Config {
            ensembl: ensembl_params(scale),
            catalog: CatalogParams {
                n_accessions: 50,
                bulk_spots_median: 600,
                ..CatalogParams::default()
            },
            spot_cap: Some(1_000),
            threads: 4,
            ..Fig4Config::default()
        },
        Scale::Paper => Fig4Config {
            ensembl: ensembl_params(scale),
            catalog: CatalogParams::default(),
            spot_cap: Some(3_000),
            threads: 4,
            ..Fig4Config::default()
        },
    }
}

/// Write the telemetry summaries of representative campaign runs next to the
/// criterion shim's `BENCH_<group>.json`, as `BENCH_<group>_telemetry.json`:
/// one object keyed by variant id. Best effort, like the shim — a bench never
/// fails on trajectory I/O, and nothing is written unless `BENCH_JSON_DIR` is
/// set and at least one report carries telemetry.
pub fn write_bench_telemetry(group: &str, variants: &[(&str, &CampaignReport)]) {
    let Ok(dir) = std::env::var("BENCH_JSON_DIR") else { return };
    if dir.is_empty() {
        return;
    }
    let mut json = String::from("{");
    let mut wrote = false;
    for (id, report) in variants {
        let Some(t) = &report.telemetry else { continue };
        if wrote {
            json.push(',');
        }
        json.push_str(&format!("{id:?}:"));
        json.push_str(&t.to_json());
        wrote = true;
    }
    json.push_str("}\n");
    if !wrote {
        return;
    }
    let slug: String = group
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
        .collect();
    let path = std::path::Path::new(&dir).join(format!("BENCH_{slug}_telemetry.json"));
    let _ = std::fs::create_dir_all(&dir);
    let _ = std::fs::write(path, json);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("test"), Some(Scale::Test));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn paper_fig4_matches_paper_catalog() {
        let c = fig4_config(Scale::Paper);
        assert_eq!(c.catalog.n_accessions, 1000);
        assert!((c.catalog.single_cell_fraction - 0.038).abs() < 1e-12);
    }

    #[test]
    fn test_scale_is_smaller() {
        assert!(fig3_config(Scale::Test).n_files < fig3_config(Scale::Paper).n_files);
        assert!(
            fig4_config(Scale::Test).catalog.n_accessions
                < fig4_config(Scale::Paper).catalog.n_accessions
        );
    }
}
