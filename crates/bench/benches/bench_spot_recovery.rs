//! Recovery-overhead bench: what does *arming* graceful spot degradation cost a
//! campaign that never needs it?
//!
//! Two variants of the same fault-free fixed-seed campaign, timed in one
//! process with the interleaved min-of-rounds estimator (same rationale as
//! bench_cloud_campaign — see its module doc):
//!
//! * `spot_recovery_off` — recovery disabled (the pre-existing engine path);
//! * `spot_recovery_on` — recovery armed: the engine tracks every busy
//!   worker's in-flight job, runs checkpoint-store GC at scale ticks, and
//!   consults the store on every job start. With zero reclaims none of it ever
//!   fires, so the measured delta is pure bookkeeping overhead.
//!
//! The ci.sh gate holds that delta within 2% (`bench_compare --overhead
//! benchmarks/baseline BENCH_spot_recovery_off.json BENCH_spot_recovery_on.json`).
//! Capture baselines on an idle box the same way as the campaign bench:
//!
//! ```text
//! BENCH_ITERS=10 BENCH_BEST_OF=10 BENCH_KEEP_MIN=1 BENCH_JSON_DIR=benchmarks/baseline \
//!     cargo bench -p atlas-bench --bench bench_spot_recovery
//! ```

use atlas_bench::{ensembl_params, Scale};
use atlas_pipeline::experiments::Substrate;
use atlas_pipeline::orchestrator::{CampaignConfig, CampaignReport, Orchestrator};
use atlas_pipeline::pipeline::{AtlasPipeline, PipelineConfig};
use atlas_pipeline::RecoveryConfig;
use cloudsim::instance::InstanceType;
use cloudsim::ScalingPolicy;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sra_sim::accession::CatalogParams;
use sra_sim::SraRepository;
use std::sync::Arc;

const SIZES: [usize; 1] = [120];

fn pipeline_fixture(sub: &Substrate, n_accessions: usize) -> (Arc<AtlasPipeline>, Vec<String>) {
    let catalog = CatalogParams {
        n_accessions,
        bulk_spots_median: 400,
        single_cell_fraction: 0.1,
        ..CatalogParams::default()
    }
    .generate()
    .expect("catalog");
    let repo = Arc::new(
        SraRepository::new(Arc::clone(&sub.asm_111), Arc::clone(&sub.annotation), catalog)
            .with_spot_cap(500),
    );
    let mut pc = PipelineConfig::default();
    pc.run_config.threads = 2;
    pc.run_config.batch_size = 200;
    let p = Arc::new(
        AtlasPipeline::new(repo, Arc::clone(&sub.index_111), Arc::clone(&sub.annotation), pc)
            .expect("pipeline"),
    );
    let ids = p.repository().ids();
    (p, ids)
}

fn config(recovery: bool) -> CampaignConfig {
    let t = InstanceType::by_name("r6a.xlarge").expect("catalog type");
    let mut cfg = CampaignConfig::new(t, 1 << 20);
    cfg.scaling = ScalingPolicy { min_size: 0, max_size: 4, target_backlog_per_instance: 4 };
    // Fault-free on purpose: zero interruptions means the recovery machinery is
    // armed but never fires, which is exactly the overhead the gate prices.
    if recovery {
        cfg.recovery = Some(RecoveryConfig::default());
    }
    cfg
}

fn run_campaign(
    pipeline: &Arc<AtlasPipeline>,
    ids: &[String],
    cfg: CampaignConfig,
) -> CampaignReport {
    let orch = Orchestrator::new(Arc::clone(pipeline), cfg).expect("orchestrator");
    let report = orch.run(ids).expect("campaign");
    assert_eq!(report.completed.len(), ids.len());
    report
}

/// Interleaved min-of-rounds timing of the off/on pair — see
/// bench_cloud_campaign's `measure_interleaved` for why adjacency matters.
fn measure_interleaved(fixtures: &[(usize, Arc<AtlasPipeline>, Vec<String>)]) -> Vec<Vec<f64>> {
    let env_num = |k: &str, default: u64| {
        std::env::var(k).ok().and_then(|s| s.parse::<u64>().ok()).unwrap_or(default).max(1)
    };
    let iters = env_num("BENCH_ITERS", 10);
    let rounds = env_num("BENCH_BEST_OF", 2);
    let variants = [false, true];

    for (_, pipeline, ids) in fixtures {
        for &on in &variants {
            let report = run_campaign(pipeline, ids, config(on));
            // Arming recovery on a fault-free campaign must not change the
            // outcome — asserted outside the timed loops.
            assert_eq!(report.salvaged_compute_secs, 0.0);
            std::hint::black_box(report.cost.total_usd);
        }
    }

    let mut best = vec![vec![f64::INFINITY; fixtures.len()]; variants.len()];
    for _ in 0..rounds {
        for (fi, (_, pipeline, ids)) in fixtures.iter().enumerate() {
            for (vi, &on) in variants.iter().enumerate() {
                let start = std::time::Instant::now();
                for _ in 0..iters {
                    let report = run_campaign(pipeline, ids, config(on));
                    std::hint::black_box(report.cost.total_usd);
                }
                let mean = start.elapsed().as_secs_f64() / iters as f64;
                best[vi][fi] = best[vi][fi].min(mean);
            }
        }
    }
    best
}

fn bench_spot_recovery(c: &mut Criterion) {
    let sub = Substrate::build(ensembl_params(Scale::Test)).expect("substrate");
    let fixtures: Vec<(usize, Arc<AtlasPipeline>, Vec<String>)> = SIZES
        .iter()
        .map(|&n| {
            let (pipeline, ids) = pipeline_fixture(&sub, n);
            (n, pipeline, ids)
        })
        .collect();

    // Digest equality off vs on: recovery is pure opt-in on fault-free
    // campaigns (checked here once, outside the timed loops, with the modeled
    // deterministic clock left alone — the unit suite covers digests; this
    // asserts the cheap observable surface).
    for (_, pipeline, ids) in &fixtures {
        let off = run_campaign(pipeline, ids, config(false));
        let on = run_campaign(pipeline, ids, config(true));
        assert_eq!(off.completed.len(), on.completed.len());
        assert_eq!(on.salvaged_compute_secs, 0.0);
        assert_eq!(off.interruptions, on.interruptions);
    }

    let timings = measure_interleaved(&fixtures);

    for (vi, name) in ["spot_recovery_off", "spot_recovery_on"].iter().enumerate() {
        let mut group = c.benchmark_group(*name);
        group.sample_size(10);
        for (fi, (n, _, _)) in fixtures.iter().enumerate() {
            group.throughput(Throughput::Elements(*n as u64));
            let mean = timings[vi][fi];
            group.bench_with_input(BenchmarkId::from_parameter(n), &mean, |b, &mean| {
                b.iter_custom(|iters| std::time::Duration::from_secs_f64(mean * iters as f64));
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_spot_recovery);
criterion_main!(benches);
