//! E4/E5 bench — the discrete-event campaign itself: how fast the simulator chews
//! through an accession workload (events, not aligned reads, are the scaling unit of
//! the orchestration layer), plus the two observer variants whose cost the
//! overhead gates price:
//!
//! * `cloud_campaign` — telemetry on, nobody watching (the base);
//! * `cloud_campaign_monitor` — live alert monitor attached (standard rule set,
//!   streamed progress events) and the Perfetto/OpenMetrics exports rendered;
//! * `cloud_campaign_slo` — the SLO engine live: standard objectives with
//!   burn-rate evaluation, quantile sketches fed per completion, budget gauges,
//!   and the attribution ledger settled into the report.
//!
//! All three run in *one process*, interleaved round-robin with a per-cell
//! min-of-rounds estimator (see [`measure_interleaved`]), precisely so the
//! `bench_compare --overhead` gates compare like with like: across separate
//! processes — or even sequential groups minutes apart in one process —
//! allocator/cache warmup and machine-load drift swamp the few-percent effect
//! being measured. Capture baselines by running this 2-3 times on an idle box
//! (`BENCH_KEEP_MIN` merges passes by keeping each cell's fastest run):
//!
//! ```text
//! BENCH_ITERS=10 BENCH_BEST_OF=10 BENCH_KEEP_MIN=1 BENCH_JSON_DIR=benchmarks/baseline \
//!     cargo bench -p atlas-bench --bench bench_cloud_campaign
//! ```

use atlas_bench::{ensembl_params, Scale};
use atlas_pipeline::experiments::Substrate;
use atlas_pipeline::orchestrator::{CampaignConfig, CampaignReport, Orchestrator};
use atlas_pipeline::pipeline::{AtlasPipeline, PipelineConfig};
use cloudsim::instance::InstanceType;
use cloudsim::ScalingPolicy;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sra_sim::accession::CatalogParams;
use sra_sim::SraRepository;
use std::sync::Arc;
use telemetry::{MonitorConfig, SloConfig, SloRegistry};

// One workload size, deliberately the large one: the overhead gates compare
// these cells against each other at 2% tolerance, and a 30-accession campaign
// (~40ms) is too short for even an interleaved min-of-rounds estimator to
// resolve a 2% difference above scheduler noise. Campaign *scaling* is covered
// by bench_fleet_campaign / bench_chaos_campaign; this bench prices observers.
const SIZES: [usize; 1] = [120];

fn pipeline_fixture(sub: &Substrate, n_accessions: usize) -> (Arc<AtlasPipeline>, Vec<String>) {
    let catalog = CatalogParams {
        n_accessions,
        bulk_spots_median: 400,
        single_cell_fraction: 0.1,
        ..CatalogParams::default()
    }
    .generate()
    .expect("catalog");
    let repo = Arc::new(
        SraRepository::new(Arc::clone(&sub.asm_111), Arc::clone(&sub.annotation), catalog)
            .with_spot_cap(500),
    );
    let mut pc = PipelineConfig::default();
    pc.run_config.threads = 2;
    pc.run_config.batch_size = 200;
    let p = Arc::new(
        AtlasPipeline::new(repo, Arc::clone(&sub.index_111), Arc::clone(&sub.annotation), pc)
            .expect("pipeline"),
    );
    let ids = p.repository().ids();
    (p, ids)
}

fn base_config() -> CampaignConfig {
    let t = InstanceType::by_name("r6a.xlarge").expect("catalog type");
    let mut cfg = CampaignConfig::new(t, 1 << 20);
    cfg.scaling = ScalingPolicy { min_size: 0, max_size: 4, target_backlog_per_instance: 4 };
    cfg
}

fn monitor_config() -> CampaignConfig {
    let mut cfg = base_config();
    cfg.monitor = Some(MonitorConfig::standard());
    cfg
}

fn slo_config() -> CampaignConfig {
    let mut cfg = base_config();
    // Tight enough that every objective is actively scored and the burn
    // evaluator does real window arithmetic each sample.
    cfg.slo = Some(SloConfig {
        registry: SloRegistry::standard(4.0 * 3600.0, 3600.0, 0.25),
        ..SloConfig::default()
    });
    cfg
}

fn run_campaign(
    pipeline: &Arc<AtlasPipeline>,
    ids: &[String],
    cfg: CampaignConfig,
) -> CampaignReport {
    let orch = Orchestrator::new(Arc::clone(pipeline), cfg).expect("orchestrator");
    let report = orch.run(ids).expect("campaign");
    assert_eq!(report.completed.len(), ids.len());
    report
}

/// Sanity checks per variant: the observed runs must actually have observed.
fn check_report(variant: usize, ids: &[String], report: &CampaignReport) {
    match variant {
        1 => {
            let t = report.telemetry.as_ref().expect("telemetry on");
            // The rendered exports are part of what the overhead gate prices in.
            std::hint::black_box((t.perfetto_json.len(), t.openmetrics_text.len()));
        }
        2 => {
            let slo = report.slo.as_ref().expect("slo on");
            assert_eq!(slo.ledger.len(), ids.len());
            let t = report.telemetry.as_ref().expect("telemetry on");
            std::hint::black_box((t.perfetto_json.len(), t.openmetrics_text.len()));
        }
        _ => {
            std::hint::black_box(report.cost.total_usd);
        }
    }
}

/// Interleaved min-of-rounds measurement of every `(variant, size)` cell.
///
/// The three variants are timed round-robin — every round runs each cell for a
/// short burst, and a cell keeps its fastest round. Machine-load transients on a
/// shared box last seconds-to-minutes; measuring the variants *adjacently inside
/// each round* means a transient inflates at most the rounds it overlaps, and the
/// per-cell minimum over rounds discards those. Measuring group-by-group instead
/// (minutes apart) lets one transient skew a whole group, which swamps the
/// few-percent overhead the gates compare.
///
/// `BENCH_ITERS` sets the burst length (iterations per cell per round) and
/// `BENCH_BEST_OF` the number of rounds, mirroring what those knobs mean for the
/// shim's default estimator.
fn measure_interleaved(fixtures: &[(usize, Arc<AtlasPipeline>, Vec<String>)]) -> Vec<Vec<f64>> {
    let env_num = |k: &str, default: u64| {
        std::env::var(k).ok().and_then(|s| s.parse::<u64>().ok()).unwrap_or(default).max(1)
    };
    let iters = env_num("BENCH_ITERS", 10);
    let rounds = env_num("BENCH_BEST_OF", 2);
    let variants = [base_config, monitor_config, slo_config];

    // Unmeasured warmup: fault in the allocator/page-cache state every variant
    // will run under, so round one starts from steady state.
    for (_, pipeline, ids) in fixtures {
        for mk in variants {
            std::hint::black_box(run_campaign(pipeline, ids, mk()).cost.total_usd);
        }
    }

    let mut best = vec![vec![f64::INFINITY; fixtures.len()]; variants.len()];
    for _ in 0..rounds {
        for (fi, (_, pipeline, ids)) in fixtures.iter().enumerate() {
            for (vi, mk) in variants.iter().enumerate() {
                let start = std::time::Instant::now();
                for _ in 0..iters {
                    let report = run_campaign(pipeline, ids, mk());
                    check_report(vi, ids, &report);
                }
                let mean = start.elapsed().as_secs_f64() / iters as f64;
                best[vi][fi] = best[vi][fi].min(mean);
            }
        }
    }
    best
}

fn bench_campaign(c: &mut Criterion) {
    let sub = Substrate::build(ensembl_params(Scale::Test)).expect("substrate");
    let fixtures: Vec<(usize, Arc<AtlasPipeline>, Vec<String>)> = SIZES
        .iter()
        .map(|&n| {
            let (pipeline, ids) = pipeline_fixture(&sub, n);
            (n, pipeline, ids)
        })
        .collect();

    let timings = measure_interleaved(&fixtures);

    // Report the interleaved measurements through the normal group machinery
    // (console lines + BENCH_*.json files) via `iter_custom`.
    for (vi, name) in
        ["cloud_campaign", "cloud_campaign_monitor", "cloud_campaign_slo"].iter().enumerate()
    {
        let mut group = c.benchmark_group(*name);
        group.sample_size(10);
        for (fi, (n, _, _)) in fixtures.iter().enumerate() {
            group.throughput(Throughput::Elements(*n as u64));
            let mean = timings[vi][fi];
            group.bench_with_input(BenchmarkId::from_parameter(n), &mean, |b, &mean| {
                b.iter_custom(|iters| std::time::Duration::from_secs_f64(mean * iters as f64));
            });
        }
        group.finish();
    }

    // One representative run per workload size, summarized next to the shim's
    // BENCH_cloud_campaign.json (no-op without BENCH_JSON_DIR).
    if std::env::var("BENCH_JSON_DIR").is_ok_and(|d| !d.is_empty()) {
        let reports: Vec<(String, _)> = fixtures
            .iter()
            .map(|(n, pipeline, ids)| (n.to_string(), run_campaign(pipeline, ids, base_config())))
            .collect();
        let refs: Vec<_> = reports.iter().map(|(n, r)| (n.as_str(), r)).collect();
        atlas_bench::write_bench_telemetry("cloud_campaign", &refs);
    }
}

criterion_group!(benches, bench_campaign);
criterion_main!(benches);
