//! E4/E5 bench — the discrete-event campaign itself: how fast the simulator chews
//! through an accession workload (events, not aligned reads, are the scaling unit of
//! the orchestration layer), and the cost arithmetic of the right-sizing comparison.

use atlas_bench::{ensembl_params, Scale};
use atlas_pipeline::experiments::Substrate;
use atlas_pipeline::orchestrator::{CampaignConfig, Orchestrator};
use atlas_pipeline::pipeline::{AtlasPipeline, PipelineConfig};
use cloudsim::instance::InstanceType;
use cloudsim::ScalingPolicy;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sra_sim::accession::CatalogParams;
use sra_sim::SraRepository;
use std::sync::Arc;

fn pipeline_fixture(sub: &Substrate, n_accessions: usize) -> (Arc<AtlasPipeline>, Vec<String>) {
    let catalog = CatalogParams {
        n_accessions,
        bulk_spots_median: 400,
        single_cell_fraction: 0.1,
        ..CatalogParams::default()
    }
    .generate()
    .expect("catalog");
    let repo = Arc::new(
        SraRepository::new(Arc::clone(&sub.asm_111), Arc::clone(&sub.annotation), catalog)
            .with_spot_cap(500),
    );
    let mut pc = PipelineConfig::default();
    pc.run_config.threads = 2;
    pc.run_config.batch_size = 200;
    let p = Arc::new(
        AtlasPipeline::new(repo, Arc::clone(&sub.index_111), Arc::clone(&sub.annotation), pc)
            .expect("pipeline"),
    );
    let ids = p.repository().ids();
    (p, ids)
}

fn bench_campaign(c: &mut Criterion) {
    let sub = Substrate::build(ensembl_params(Scale::Test)).expect("substrate");
    let mut group = c.benchmark_group("cloud_campaign");
    group.sample_size(10);
    let mut fixtures = Vec::new();
    for n in [10usize, 30] {
        let (pipeline, ids) = pipeline_fixture(&sub, n);
        fixtures.push((n, Arc::clone(&pipeline), ids.clone()));
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &ids, |b, ids| {
            b.iter(|| {
                let t = InstanceType::by_name("r6a.xlarge").expect("catalog type");
                let mut cfg = CampaignConfig::new(t, 1 << 20);
                cfg.scaling =
                    ScalingPolicy { min_size: 0, max_size: 4, target_backlog_per_instance: 4 };
                let orch = Orchestrator::new(Arc::clone(&pipeline), cfg).expect("orchestrator");
                let report = orch.run(ids).expect("campaign");
                assert_eq!(report.completed.len(), ids.len());
                report.cost.total_usd
            });
        });
    }
    group.finish();

    // One representative run per workload size, summarized next to the shim's
    // BENCH_cloud_campaign.json (no-op without BENCH_JSON_DIR).
    if std::env::var("BENCH_JSON_DIR").is_ok_and(|d| !d.is_empty()) {
        let reports: Vec<(String, _)> = fixtures
            .iter()
            .map(|(n, pipeline, ids)| {
                let t = InstanceType::by_name("r6a.xlarge").expect("catalog type");
                let mut cfg = CampaignConfig::new(t, 1 << 20);
                cfg.scaling =
                    ScalingPolicy { min_size: 0, max_size: 4, target_backlog_per_instance: 4 };
                let orch = Orchestrator::new(Arc::clone(pipeline), cfg).expect("orchestrator");
                (n.to_string(), orch.run(ids).expect("campaign"))
            })
            .collect();
        let refs: Vec<_> = reports.iter().map(|(n, r)| (n.as_str(), r)).collect();
        atlas_bench::write_bench_telemetry("cloud_campaign", &refs);
    }
}

criterion_group!(benches, bench_campaign);
criterion_main!(benches);
