//! E1/E2 bench — Fig. 3 and the §III-A table: alignment throughput on the
//! release-108 vs release-111 index, plus index construction cost.
//!
//! The paper's headline: the release-111 toplevel index makes STAR >12× faster
//! (weighted by FASTQ size) at <1 % mapping-rate difference. Here the same read set
//! is aligned against both indices; criterion reports the per-index batch time, whose
//! ratio is the measured speedup.

use atlas_bench::{ensembl_params, Scale};
use atlas_pipeline::experiments::Substrate;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use genomics::{FastqRecord, LibraryType, ReadSimulator, SimulatorParams};
use star_aligner::index::{IndexParams, StarIndex};
use star_aligner::runner::{RunConfig, Runner};
use star_aligner::AlignParams;

fn reads_fixture(sub: &Substrate, n: usize) -> Vec<FastqRecord> {
    let mut sim = ReadSimulator::new(
        &sub.asm_111,
        &sub.annotation,
        SimulatorParams::for_library(LibraryType::BulkPolyA),
        11,
    )
    .expect("simulator");
    sim.simulate(n, "BENCH").into_iter().map(|r| r.fastq).collect()
}

fn bench_alignment_by_release(c: &mut Criterion) {
    let sub = Substrate::build(ensembl_params(Scale::Test)).expect("substrate");
    let reads = reads_fixture(&sub, 3_000);
    let mut params = AlignParams::default();
    params.out_filter_multimap_nmax = 20;
    let run_config = RunConfig { threads: 4, batch_size: 1_000, quant: false, record_alignments: false, collect_junctions: false };

    let mut group = c.benchmark_group("fig3_alignment_time");
    group.sample_size(10);
    group.throughput(Throughput::Elements(reads.len() as u64));
    for (label, index) in [("release_108", &sub.index_108), ("release_111", &sub.index_111)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), index, |b, index| {
            let runner = Runner::new(index, params.clone(), run_config.clone()).expect("runner");
            b.iter(|| {
                let out = runner.run(&reads, None, None, None).expect("run");
                assert!(out.mapped_fraction() > 0.8);
                out.final_snapshot.processed
            });
        });
    }
    group.finish();
}

fn bench_index_build_by_release(c: &mut Criterion) {
    let sub = Substrate::build(ensembl_params(Scale::Test)).expect("substrate");
    let mut group = c.benchmark_group("index_build_time");
    group.sample_size(10);
    for (label, asm) in [("release_108", &sub.asm_108), ("release_111", &sub.asm_111)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), asm, |b, asm| {
            b.iter(|| {
                let idx = StarIndex::build(asm, &sub.annotation, &IndexParams::default()).expect("build");
                idx.stats().total_bytes()
            });
        });
    }
    group.finish();
}

fn bench_index_serialize(c: &mut Criterion) {
    let sub = Substrate::build(ensembl_params(Scale::Test)).expect("substrate");
    let blob = sub.index_111.serialize();
    let mut group = c.benchmark_group("index_serde");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(blob.len() as u64));
    group.bench_function("serialize_r111", |b| b.iter(|| sub.index_111.serialize().len()));
    group.bench_function("deserialize_r111", |b| {
        b.iter(|| StarIndex::deserialize(&blob).expect("deserialize").stats().genome_len)
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_alignment_by_release,
    bench_index_build_by_release,
    bench_index_serialize
);
criterion_main!(benches);
