//! Monitor/exporter overhead bench — the exact `cloud_campaign` workload with the
//! live alert monitor attached (standard rule set, streamed progress events) and
//! the Perfetto/OpenMetrics exports rendered. `BENCH_cloud_campaign_monitor.json`
//! is gated against `BENCH_cloud_campaign.json` by `bench_compare --overhead`:
//! watching the campaign must cost < 2% of running it.

use atlas_bench::{ensembl_params, Scale};
use atlas_pipeline::experiments::Substrate;
use atlas_pipeline::orchestrator::{CampaignConfig, Orchestrator};
use atlas_pipeline::pipeline::{AtlasPipeline, PipelineConfig};
use cloudsim::instance::InstanceType;
use cloudsim::ScalingPolicy;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sra_sim::accession::CatalogParams;
use sra_sim::SraRepository;
use std::sync::Arc;
use telemetry::MonitorConfig;

/// Identical to `bench_cloud_campaign`'s fixture — the two groups must measure
/// the same workload for the overhead comparison to mean anything.
fn pipeline_fixture(sub: &Substrate, n_accessions: usize) -> (Arc<AtlasPipeline>, Vec<String>) {
    let catalog = CatalogParams {
        n_accessions,
        bulk_spots_median: 400,
        single_cell_fraction: 0.1,
        ..CatalogParams::default()
    }
    .generate()
    .expect("catalog");
    let repo = Arc::new(
        SraRepository::new(Arc::clone(&sub.asm_111), Arc::clone(&sub.annotation), catalog)
            .with_spot_cap(500),
    );
    let mut pc = PipelineConfig::default();
    pc.run_config.threads = 2;
    pc.run_config.batch_size = 200;
    let p = Arc::new(
        AtlasPipeline::new(repo, Arc::clone(&sub.index_111), Arc::clone(&sub.annotation), pc)
            .expect("pipeline"),
    );
    let ids = p.repository().ids();
    (p, ids)
}

fn bench_campaign_monitor(c: &mut Criterion) {
    let sub = Substrate::build(ensembl_params(Scale::Test)).expect("substrate");
    let mut group = c.benchmark_group("cloud_campaign_monitor");
    group.sample_size(10);
    for n in [10usize, 30] {
        let (pipeline, ids) = pipeline_fixture(&sub, n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &ids, |b, ids| {
            b.iter(|| {
                let t = InstanceType::by_name("r6a.xlarge").expect("catalog type");
                let mut cfg = CampaignConfig::new(t, 1 << 20);
                cfg.scaling =
                    ScalingPolicy { min_size: 0, max_size: 4, target_backlog_per_instance: 4 };
                cfg.monitor = Some(MonitorConfig::standard());
                let orch = Orchestrator::new(Arc::clone(&pipeline), cfg).expect("orchestrator");
                let report = orch.run(ids).expect("campaign");
                assert_eq!(report.completed.len(), ids.len());
                let t = report.telemetry.as_ref().expect("telemetry on");
                // The exports are part of what we price in.
                (t.perfetto_json.len(), t.openmetrics_text.len(), report.alerts.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_campaign_monitor);
criterion_main!(benches);
