//! E6 bench — the pseudoaligner future-work study: throughput of pseudoalignment vs
//! full STAR-style alignment on the same reads, and the cost of a hopeless
//! single-cell run with the progress stream on (early-stoppable) vs off (stock
//! Salmon, must run to completion).

use atlas_bench::{ensembl_params, Scale};
use atlas_pipeline::early_stop::EarlyStopPolicy;
use atlas_pipeline::experiments::Substrate;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use genomics::{FastqRecord, LibraryType, ReadSimulator, SimulatorParams};
use pseudo_aligner::pseudoalign::PseudoParams;
use pseudo_aligner::{PseudoIndex, PseudoIndexParams, PseudoRunConfig, PseudoRunner};
use star_aligner::runner::{RunConfig, RunMonitor, Runner};
use star_aligner::AlignParams;

fn reads(sub: &Substrate, library: LibraryType, n: usize, seed: u64) -> Vec<FastqRecord> {
    ReadSimulator::new(&sub.asm_111, &sub.annotation, SimulatorParams::for_library(library), seed)
        .expect("simulator")
        .simulate(n, "BP")
        .into_iter()
        .map(|r| r.fastq)
        .collect()
}

fn bench_aligner_vs_pseudoaligner(c: &mut Criterion) {
    let sub = Substrate::build(ensembl_params(Scale::Test)).expect("substrate");
    let pseudo_index =
        PseudoIndex::build(&sub.asm_111, &sub.annotation, &PseudoIndexParams { k: 21 }).expect("index");
    let bulk = reads(&sub, LibraryType::BulkPolyA, 3_000, 41);
    let run_config =
        RunConfig { threads: 4, batch_size: 1_000, quant: false, record_alignments: false, collect_junctions: false };

    let mut group = c.benchmark_group("aligner_vs_pseudoaligner");
    group.sample_size(10);
    group.throughput(Throughput::Elements(bulk.len() as u64));
    group.bench_function("star_full_alignment", |b| {
        let runner = Runner::new(&sub.index_111, AlignParams::default(), run_config.clone()).expect("runner");
        b.iter(|| runner.run(&bulk, None, None, None).expect("run").final_snapshot.processed);
    });
    group.bench_function("pseudoalignment", |b| {
        let runner = PseudoRunner::new(
            &pseudo_index,
            PseudoParams::default(),
            PseudoRunConfig { threads: 4, batch_size: 1_000, report_progress: true },
        )
        .expect("runner");
        b.iter(|| runner.run(&bulk, None).expect("run").final_snapshot.processed);
    });
    group.finish();
}

fn bench_progress_stream_value(c: &mut Criterion) {
    let sub = Substrate::build(ensembl_params(Scale::Test)).expect("substrate");
    let pseudo_index =
        PseudoIndex::build(&sub.asm_111, &sub.annotation, &PseudoIndexParams { k: 21 }).expect("index");
    // A hopeless (single-cell) library, 10x the bulk size like the paper's data.
    let sc = reads(&sub, LibraryType::SingleCell3Prime, 10_000, 42);
    let policy = EarlyStopPolicy::default();

    let mut group = c.benchmark_group("pseudo_progress_stream");
    group.sample_size(10);
    group.throughput(Throughput::Elements(sc.len() as u64));
    for (label, report_progress) in [("progress_on_early_stop", true), ("stock_mode_full_run", false)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &report_progress, |b, &rp| {
            let runner = PseudoRunner::new(
                &pseudo_index,
                PseudoParams::default(),
                PseudoRunConfig { threads: 4, batch_size: 500, report_progress: rp },
            )
            .expect("runner");
            b.iter(|| {
                runner
                    .run(&sc, Some(&policy as &dyn RunMonitor))
                    .expect("run")
                    .final_snapshot
                    .processed
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_aligner_vs_pseudoaligner, bench_progress_stream_value);
criterion_main!(benches);
