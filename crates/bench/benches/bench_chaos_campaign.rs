//! Chaos bench — the fault-injection layer's overhead on the discrete-event
//! simulator. Three configurations over the same workload: fault-free baseline,
//! a transient-fault chaos plan, and chaos plus a spot-interruption burst. The
//! deltas show what deterministic injection, retry bookkeeping, and DLQ
//! accounting cost per simulated campaign.

use atlas_bench::{ensembl_params, Scale};
use atlas_pipeline::experiments::Substrate;
use atlas_pipeline::orchestrator::{CampaignConfig, Orchestrator};
use atlas_pipeline::pipeline::{AtlasPipeline, PipelineConfig};
use cloudsim::faults::{FaultPlan, SpotBurst};
use cloudsim::instance::InstanceType;
use cloudsim::ScalingPolicy;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sra_sim::accession::CatalogParams;
use sra_sim::SraRepository;
use std::sync::Arc;

fn pipeline_fixture(sub: &Substrate, n_accessions: usize) -> (Arc<AtlasPipeline>, Vec<String>) {
    let catalog = CatalogParams {
        n_accessions,
        bulk_spots_median: 400,
        single_cell_fraction: 0.1,
        ..CatalogParams::default()
    }
    .generate()
    .expect("catalog");
    let repo = Arc::new(
        SraRepository::new(Arc::clone(&sub.asm_111), Arc::clone(&sub.annotation), catalog)
            .with_spot_cap(500),
    );
    let mut pc = PipelineConfig::default();
    pc.run_config.threads = 2;
    pc.run_config.batch_size = 200;
    // Modeled align time keeps every iteration's event schedule identical.
    pc.align_secs_per_read = Some(2.0e-4);
    let p = Arc::new(
        AtlasPipeline::new(repo, Arc::clone(&sub.index_111), Arc::clone(&sub.annotation), pc)
            .expect("pipeline"),
    );
    let ids = p.repository().ids();
    (p, ids)
}

fn chaos_config(plan: Option<FaultPlan>) -> CampaignConfig {
    let t = InstanceType::by_name("r6a.xlarge").expect("catalog type");
    let mut cfg = CampaignConfig::new(t, 1 << 20);
    cfg.scaling = ScalingPolicy { min_size: 0, max_size: 4, target_backlog_per_instance: 4 };
    cfg.scale_tick = cloudsim::SimDuration::from_secs(10.0);
    cfg.poll_interval = cloudsim::SimDuration::from_secs(5.0);
    cfg.faults = plan;
    cfg.max_receive_count = Some(6);
    cfg
}

fn bench_chaos(c: &mut Criterion) {
    let sub = Substrate::build(ensembl_params(Scale::Test)).expect("substrate");
    let n = 12usize;
    let (pipeline, ids) = pipeline_fixture(&sub, n);

    let mut burst_plan = FaultPlan::chaos(9);
    burst_plan.spot_bursts =
        vec![SpotBurst { start_secs: 100.0, duration_secs: 600.0, rate_per_hour: 60.0 }];
    let variants: [(&str, Option<FaultPlan>); 3] = [
        ("fault_free", None),
        ("chaos", Some(FaultPlan::chaos(9))),
        ("chaos_with_burst", Some(burst_plan)),
    ];

    let mut group = c.benchmark_group("chaos_campaign");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n as u64));
    for (name, plan) in variants.clone() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &plan, |b, plan| {
            b.iter(|| {
                let orch = Orchestrator::new(Arc::clone(&pipeline), chaos_config(plan.clone()))
                    .expect("orchestrator");
                let report = orch.run(&ids).expect("campaign");
                assert_eq!(report.completed.len() + report.dead_lettered.len(), ids.len());
                report.summary_digest()
            });
        });
    }
    group.finish();

    // One representative run per variant, summarized next to the shim's
    // BENCH_chaos_campaign.json (no-op without BENCH_JSON_DIR).
    if std::env::var("BENCH_JSON_DIR").is_ok_and(|d| !d.is_empty()) {
        let reports: Vec<(&str, _)> = variants
            .iter()
            .map(|(name, plan)| {
                let orch = Orchestrator::new(Arc::clone(&pipeline), chaos_config(plan.clone()))
                    .expect("orchestrator");
                (*name, orch.run(&ids).expect("campaign"))
            })
            .collect();
        let refs: Vec<_> = reports.iter().map(|(name, r)| (*name, r)).collect();
        atlas_bench::write_bench_telemetry("chaos_campaign", &refs);
    }
}

criterion_group!(benches, bench_chaos);
criterion_main!(benches);
