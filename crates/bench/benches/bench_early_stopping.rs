//! E3 bench — Fig. 4: the cost of an alignment with and without early stopping.
//!
//! The paper's claim is that aborting sub-30 %-mapping runs at the 10 %-of-reads
//! checkpoint recovers ~19.5 % of total STAR time, concentrated on single-cell
//! libraries. This bench measures the alignment wall time of a single-cell read set
//! with the policy on vs off (the on/off ratio is the per-run saving), plus a bulk
//! control where the policy must never fire.

use atlas_bench::{ensembl_params, Scale};
use atlas_pipeline::early_stop::EarlyStopPolicy;
use atlas_pipeline::experiments::Substrate;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use genomics::{FastqRecord, LibraryType, ReadSimulator, SimulatorParams};
use star_aligner::runner::{RunConfig, RunMonitor, RunStatus, Runner};
use star_aligner::AlignParams;

fn reads(sub: &Substrate, library: LibraryType, n: usize, seed: u64) -> Vec<FastqRecord> {
    let mut sim =
        ReadSimulator::new(&sub.asm_111, &sub.annotation, SimulatorParams::for_library(library), seed)
            .expect("simulator");
    sim.simulate(n, "ES").into_iter().map(|r| r.fastq).collect()
}

fn bench_early_stopping(c: &mut Criterion) {
    let sub = Substrate::build(ensembl_params(Scale::Test)).expect("substrate");
    // Single-cell accessions are ~10x larger; keep that shape so the saving is visible.
    let sc_reads = reads(&sub, LibraryType::SingleCell3Prime, 8_000, 21);
    let bulk_reads = reads(&sub, LibraryType::BulkPolyA, 800, 22);
    let run_config = RunConfig { threads: 4, batch_size: 400, quant: false, record_alignments: false, collect_junctions: false };
    let runner =
        Runner::new(&sub.index_111, AlignParams::default(), run_config).expect("runner");
    let policy = EarlyStopPolicy::default();

    let mut group = c.benchmark_group("fig4_early_stopping");
    group.sample_size(10);

    group.throughput(Throughput::Elements(sc_reads.len() as u64));
    group.bench_with_input(BenchmarkId::new("single_cell", "policy_on"), &sc_reads, |b, reads| {
        b.iter(|| {
            let out = runner
                .run(reads, None, Some(&policy as &dyn RunMonitor), None)
                .expect("run");
            assert!(matches!(out.status, RunStatus::EarlyStopped { .. }), "policy must fire");
            out.final_snapshot.processed
        });
    });
    group.bench_with_input(BenchmarkId::new("single_cell", "policy_off"), &sc_reads, |b, reads| {
        b.iter(|| {
            let out = runner.run(reads, None, None, None).expect("run");
            assert!(matches!(out.status, RunStatus::Completed));
            out.final_snapshot.processed
        });
    });
    group.throughput(Throughput::Elements(bulk_reads.len() as u64));
    group.bench_with_input(BenchmarkId::new("bulk_control", "policy_on"), &bulk_reads, |b, reads| {
        b.iter(|| {
            let out = runner
                .run(reads, None, Some(&policy as &dyn RunMonitor), None)
                .expect("run");
            assert!(matches!(out.status, RunStatus::Completed), "bulk must never be stopped");
            out.final_snapshot.processed
        });
    });
    group.finish();
}

criterion_group!(benches, bench_early_stopping);
criterion_main!(benches);
