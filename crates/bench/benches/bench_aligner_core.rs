//! Core aligner micro-benchmarks: suffix-array construction, MMP seed search, and
//! per-read-class alignment cost. These underpin the figure-level benches — when a
//! figure's shape shifts, these localize which stage moved.

use atlas_bench::{ensembl_params, Scale};
use atlas_pipeline::experiments::Substrate;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use genomics::{DnaSeq, LibraryType, ReadSimulator, SimulatorParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use star_aligner::align::Aligner;
use star_aligner::mmp::mmp_search;
use star_aligner::sa::SuffixArray;
use star_aligner::seed::collect_seeds;
use star_aligner::AlignParams;

fn bench_suffix_array_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("suffix_array_build");
    group.sample_size(10);
    for len in [100_000usize, 400_000, 1_600_000] {
        let seq = DnaSeq::random(&mut StdRng::seed_from_u64(1), len);
        group.throughput(Throughput::Elements(len as u64));
        group.bench_with_input(BenchmarkId::from_parameter(len), &seq, |b, seq| {
            b.iter(|| SuffixArray::build(seq.codes()).len());
        });
    }
    group.finish();
}

fn bench_mmp_search(c: &mut Criterion) {
    let sub = Substrate::build(ensembl_params(Scale::Test)).expect("substrate");
    let chrom = sub.asm_111.contig("1").expect("chromosome 1");
    // Genomic 100-mers: every search runs to full depth.
    let queries: Vec<Vec<u8>> =
        (0..512).map(|i| chrom.seq.subseq(i * 97 % (chrom.len() - 100), i * 97 % (chrom.len() - 100) + 100).codes().to_vec()).collect();
    let mut group = c.benchmark_group("mmp_search");
    group.throughput(Throughput::Elements(queries.len() as u64));
    for (label, index) in [("release_108", &sub.index_108), ("release_111", &sub.index_111)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), index, |b, index| {
            b.iter(|| {
                queries.iter().map(|q| mmp_search(index, q, 0).len).sum::<usize>()
            });
        });
    }
    group.finish();
}

fn bench_seed_collection(c: &mut Criterion) {
    let sub = Substrate::build(ensembl_params(Scale::Test)).expect("substrate");
    let mut sim = ReadSimulator::new(
        &sub.asm_111,
        &sub.annotation,
        SimulatorParams::for_library(LibraryType::BulkPolyA),
        3,
    )
    .expect("simulator");
    let reads: Vec<Vec<u8>> =
        sim.simulate(512, "S").into_iter().map(|r| r.fastq.seq.codes().to_vec()).collect();
    let params = AlignParams::default();
    let mut group = c.benchmark_group("seed_collection");
    group.throughput(Throughput::Elements(reads.len() as u64));
    for (label, index) in [("release_108", &sub.index_108), ("release_111", &sub.index_111)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), index, |b, index| {
            b.iter(|| reads.iter().map(|r| collect_seeds(index, r, &params).len()).sum::<usize>());
        });
    }
    group.finish();
}

fn bench_align_by_read_class(c: &mut Criterion) {
    let sub = Substrate::build(ensembl_params(Scale::Test)).expect("substrate");
    let aligner = Aligner::new(&sub.index_111, AlignParams::default());
    let chrom = sub.asm_111.contig("1").expect("chromosome 1");
    let genomic: Vec<DnaSeq> = (0..256).map(|i| chrom.seq.subseq(i * 131, i * 131 + 100)).collect();
    let mut sc_sim = ReadSimulator::new(
        &sub.asm_111,
        &sub.annotation,
        SimulatorParams::for_library(LibraryType::SingleCell3Prime),
        5,
    )
    .expect("simulator");
    let junky: Vec<DnaSeq> = sc_sim.simulate(256, "J").into_iter().map(|r| r.fastq.seq).collect();

    let mut group = c.benchmark_group("align_read_class");
    group.throughput(Throughput::Elements(256));
    group.bench_function("genomic_perfect", |b| {
        b.iter(|| genomic.iter().filter(|s| aligner.align_seq(s).is_mapped()).count())
    });
    group.bench_function("single_cell_mix", |b| {
        b.iter(|| junky.iter().filter(|s| aligner.align_seq(s).is_mapped()).count())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_suffix_array_build,
    bench_mmp_search,
    bench_seed_collection,
    bench_align_by_read_class
);
criterion_main!(benches);
