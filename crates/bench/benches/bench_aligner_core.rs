//! Core aligner micro-benchmarks: suffix-array construction, MMP seed search, and
//! per-read-class alignment cost. These underpin the figure-level benches — when a
//! figure's shape shifts, these localize which stage moved.

use atlas_bench::{ensembl_params, Scale};
use atlas_pipeline::experiments::Substrate;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use genomics::{DnaSeq, LibraryType, ReadSimulator, SimulatorParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use star_aligner::align::Aligner;
use star_aligner::mmp::{mmp_search, mmp_search_packed};
use star_aligner::sa::SuffixArray;
use star_aligner::seed::{collect_seeds_packed, SeedProbeScratch};
use star_aligner::{AlignParams, Packed2};

fn bench_suffix_array_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("suffix_array_build");
    group.sample_size(10);
    for len in [100_000usize, 400_000, 1_600_000] {
        let seq = DnaSeq::random(&mut StdRng::seed_from_u64(1), len);
        group.throughput(Throughput::Elements(len as u64));
        group.bench_with_input(BenchmarkId::from_parameter(len), &seq, |b, seq| {
            b.iter(|| SuffixArray::build(seq.codes()).len());
        });
    }
    group.finish();
}

fn bench_mmp_search(c: &mut Criterion) {
    let sub = Substrate::build(ensembl_params(Scale::Test)).expect("substrate");
    let chrom = sub.asm_111.contig("1").expect("chromosome 1");
    // Genomic 100-mers: every search runs to full depth.
    let queries: Vec<Vec<u8>> =
        (0..512).map(|i| chrom.seq.subseq(i * 97 % (chrom.len() - 100), i * 97 % (chrom.len() - 100) + 100).codes().to_vec()).collect();
    let mut group = c.benchmark_group("mmp_search");
    group.throughput(Throughput::Elements(queries.len() as u64));
    for (label, index) in [("release_108", &sub.index_108), ("release_111", &sub.index_111)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), index, |b, index| {
            b.iter(|| {
                queries.iter().map(|q| mmp_search(index, q, 0).len).sum::<usize>()
            });
        });
    }
    group.finish();
}

fn bench_seed_collection(c: &mut Criterion) {
    let sub = Substrate::build(ensembl_params(Scale::Test)).expect("substrate");
    let mut sim = ReadSimulator::new(
        &sub.asm_111,
        &sub.annotation,
        SimulatorParams::for_library(LibraryType::BulkPolyA),
        3,
    )
    .expect("simulator");
    // Hot-path shape: reads packed once, seed buffer and probe scratch reused —
    // exactly how the aligner drives seed collection per read.
    let reads: Vec<Packed2> = sim
        .simulate(512, "S")
        .into_iter()
        .map(|r| Packed2::from_codes(r.fastq.seq.codes()))
        .collect();
    let params = AlignParams::default();
    let mut group = c.benchmark_group("seed_collection");
    group.throughput(Throughput::Elements(reads.len() as u64));
    for (label, index) in [("release_108", &sub.index_108), ("release_111", &sub.index_111)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), index, |b, index| {
            let mut seeds = Vec::new();
            let mut probe = SeedProbeScratch::default();
            b.iter(|| {
                reads
                    .iter()
                    .map(|q| {
                        collect_seeds_packed(index, &[], None, q, &params, &mut seeds, &mut probe);
                        seeds.len()
                    })
                    .sum::<usize>()
            });
        });
    }
    group.finish();
}

fn bench_hash_seed_lookup(c: &mut Criterion) {
    // The SNAP-style layer's pitch: one hash probe replaces `s` rounds of
    // suffix-array refinement at every seeding position. Same genomic 100-mers
    // as the mmp_search group, packed once outside the loop (the hot path keeps
    // reads packed), so the cells isolate the starting-layer cost alone.
    let sub = Substrate::build(ensembl_params(Scale::Test)).expect("substrate");
    let index = &sub.index_111;
    let chrom = sub.asm_111.contig("1").expect("chromosome 1");
    let queries: Vec<Packed2> = (0..512)
        .map(|i| {
            let at = i * 97 % (chrom.len() - 100);
            Packed2::from_codes(chrom.seq.subseq(at, at + 100).codes())
        })
        .collect();
    let hash = index.hash_seed(16);
    // Premise outside the timed loop: the layers must agree on every MMP.
    for q in &queries {
        assert_eq!(
            mmp_search_packed(index, &[], Some(hash), q, 0).len,
            mmp_search_packed(index, &[], None, q, 0).len,
        );
    }
    let mut group = c.benchmark_group("hash_seed_lookup");
    group.throughput(Throughput::Elements(queries.len() as u64));
    for (label, hash) in [("sa_path", None), ("hash_s16", Some(hash))] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &hash, |b, hash| {
            b.iter(|| {
                queries.iter().map(|q| mmp_search_packed(index, &[], *hash, q, 0).len).sum::<usize>()
            });
        });
    }
    group.finish();
}

fn bench_align_by_read_class(c: &mut Criterion) {
    let sub = Substrate::build(ensembl_params(Scale::Test)).expect("substrate");
    let aligner = Aligner::new(&sub.index_111, AlignParams::default());
    let chrom = sub.asm_111.contig("1").expect("chromosome 1");
    let genomic: Vec<DnaSeq> = (0..256).map(|i| chrom.seq.subseq(i * 131, i * 131 + 100)).collect();
    let mut sc_sim = ReadSimulator::new(
        &sub.asm_111,
        &sub.annotation,
        SimulatorParams::for_library(LibraryType::SingleCell3Prime),
        5,
    )
    .expect("simulator");
    let junky: Vec<DnaSeq> = sc_sim.simulate(256, "J").into_iter().map(|r| r.fastq.seq).collect();

    let mut group = c.benchmark_group("align_read_class");
    group.throughput(Throughput::Elements(256));
    group.bench_function("genomic_perfect", |b| {
        b.iter(|| genomic.iter().filter(|s| aligner.align_seq(s).is_mapped()).count())
    });
    group.bench_function("single_cell_mix", |b| {
        b.iter(|| junky.iter().filter(|s| aligner.align_seq(s).is_mapped()).count())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_suffix_array_build,
    bench_mmp_search,
    bench_seed_collection,
    bench_hash_seed_lookup,
    bench_align_by_read_class
);
criterion_main!(benches);
