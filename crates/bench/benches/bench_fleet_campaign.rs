//! Fleet-scale campaign bench — the payoff of the discrete-event kernel.
//!
//! The deleted legacy loop walked every instance and message on every poll
//! tick, so campaign cost grew with `ticks × fleet` regardless of how much
//! actually happened. The kernel dispatches only scheduled events, which is
//! what makes a 10k-accession / 1250-instance-ceiling campaign (two orders of
//! magnitude past the old fixtures) a seconds-scale bench. A 1k-accession /
//! 128-ceiling cell tracks the mid-scale regime; the replay suite
//! (devent_diff.rs) proves reports are byte-identical run to run, so any
//! timing change here is pure bookkeeping cost.
//!
//! The workload is modeled (`ModeledWorkload`): per-accession results are a pure
//! function of `(seed, accession)`, so every iteration replays the exact same
//! event schedule with zero pipeline cost — the bench measures the simulator,
//! not STAR.

use atlas_pipeline::orchestrator::{CampaignConfig, CampaignEngine, CampaignReport, Orchestrator};
use atlas_pipeline::ModeledWorkload;
use cloudsim::instance::InstanceType;
use cloudsim::ScalingPolicy;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn fleet_config(engine: CampaignEngine, max_fleet: u32) -> CampaignConfig {
    let t = InstanceType::by_name("r6a.xlarge").expect("catalog type");
    let mut cfg = CampaignConfig::new(t, 1 << 20);
    cfg.engine = engine;
    cfg.scaling =
        ScalingPolicy { min_size: 0, max_size: max_fleet, target_backlog_per_instance: 8 };
    cfg.scale_tick = cloudsim::SimDuration::from_secs(10.0);
    cfg.poll_interval = cloudsim::SimDuration::from_secs(5.0);
    // Light spot pressure keeps the interruption/redelivery machinery on the
    // hot path; at 10k-job scale a handful of unlucky accessions exhaust their
    // redelivery allowance and dead-letter — the DLQ path is part of the load.
    cfg.spot_market =
        cloudsim::SpotMarket { price_factor: 0.35, interruptions_per_hour: 2.0, seed: 11 };
    cfg.max_receive_count = Some(6);
    // Measure the simulator, not the span recorder.
    cfg.telemetry = false;
    cfg
}

fn run_campaign(cfg: &CampaignConfig, ids: &[String]) -> CampaignReport {
    Orchestrator::with_workload(ModeledWorkload::default().into_workload(), cfg.clone())
        .expect("orchestrator")
        .run(ids)
        .expect("campaign")
}

fn bench_fleet(c: &mut Criterion) {
    // Headline scale: 10k accessions, fleet ceiling 1250 (backlog/8 ⇒ the ASG
    // actually drives it past 1000 instances at peak).
    let n_large = 10_000usize;
    let large_ids = ModeledWorkload::accessions(n_large);
    let large_cfg = fleet_config(CampaignEngine::EventKernel, 1250);

    // Premise check once, outside the timed loop: the campaign really is
    // fleet-scale and loses nothing.
    let report = run_campaign(&large_cfg, &large_ids);
    assert_eq!(
        report.completed.len() + report.dead_lettered.len(),
        n_large,
        "every accession must resolve exactly once"
    );
    assert!(report.completed.len() >= n_large - n_large / 100, "≥99% must complete");
    let peak = report.fleet_timeline.iter().map(|s| s.active_instances).max().unwrap_or(0);
    assert!(peak >= 1000, "peak fleet {peak} must reach four digits");
    assert!(report.sim_events > 0);

    let mut group = c.benchmark_group("fleet_campaign");
    group.sample_size(10);

    group.throughput(Throughput::Elements(n_large as u64));
    group.bench_with_input(
        BenchmarkId::from_parameter("kernel_10k_x1250"),
        &large_cfg,
        |b, cfg| {
            b.iter(|| {
                let r = run_campaign(cfg, &large_ids);
                assert_eq!(r.completed.len() + r.dead_lettered.len(), n_large);
                r.summary_digest()
            });
        },
    );

    // Mid-scale cell: 1k accessions, 128-instance ceiling — the size the old
    // legacy loop topped out at, kept for continuity with earlier baselines.
    let n_small = 1_000usize;
    let small_ids = ModeledWorkload::accessions(n_small);
    group.throughput(Throughput::Elements(n_small as u64));
    let cfg = fleet_config(CampaignEngine::EventKernel, 128);
    group.bench_with_input(BenchmarkId::from_parameter("kernel_1k_x128"), &cfg, |b, cfg| {
        b.iter(|| {
            let r = run_campaign(cfg, &small_ids);
            assert_eq!(r.completed.len() + r.dead_lettered.len(), n_small);
            r.summary_digest()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fleet);
criterion_main!(benches);
