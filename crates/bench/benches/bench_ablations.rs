//! Ablations over the design choices DESIGN.md calls out:
//!
//! * prefix-table depth (`--genomeSAindexNbases` analog) — seed-search accelerator;
//! * anchor multimap cap (`--winAnchorMultimapNmax` analog) — repetitive-seed guard;
//! * early-stopping checkpoint fraction — the paper picked 10 % from 1000 progress
//!   logs; the sweep shows the decision cost at other checkpoints;
//! * runner thread scaling (`--runThreadN`).

use atlas_bench::{ensembl_params, Scale};
use atlas_pipeline::early_stop::EarlyStopPolicy;
use atlas_pipeline::experiments::Substrate;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use genomics::{FastqRecord, LibraryType, ReadSimulator, SimulatorParams};
use star_aligner::index::{IndexParams, StarIndex};
use star_aligner::runner::{RunConfig, RunMonitor, Runner};
use star_aligner::AlignParams;

fn bulk_reads(sub: &Substrate, n: usize, seed: u64) -> Vec<FastqRecord> {
    ReadSimulator::new(
        &sub.asm_111,
        &sub.annotation,
        SimulatorParams::for_library(LibraryType::BulkPolyA),
        seed,
    )
    .expect("simulator")
    .simulate(n, "AB")
    .into_iter()
    .map(|r| r.fastq)
    .collect()
}

fn bench_prefix_depth(c: &mut Criterion) {
    let sub = Substrate::build(ensembl_params(Scale::Test)).expect("substrate");
    let reads = bulk_reads(&sub, 1_500, 31);
    let run_config = RunConfig { threads: 2, batch_size: 500, quant: false, record_alignments: false, collect_junctions: false };
    let mut group = c.benchmark_group("ablation_prefix_depth");
    group.sample_size(10);
    group.throughput(Throughput::Elements(reads.len() as u64));
    for k in [4usize, 6, 8, 10] {
        let params = IndexParams { sa_index_nbases: Some(k), ..IndexParams::default() };
        let index = StarIndex::build(&sub.asm_111, &sub.annotation, &params).expect("index");
        group.bench_with_input(BenchmarkId::from_parameter(k), &index, |b, index| {
            let runner = Runner::new(index, AlignParams::default(), run_config.clone()).expect("runner");
            b.iter(|| runner.run(&reads, None, None, None).expect("run").final_snapshot.processed);
        });
    }
    group.finish();
}

fn bench_anchor_cap(c: &mut Criterion) {
    let sub = Substrate::build(ensembl_params(Scale::Test)).expect("substrate");
    let reads = bulk_reads(&sub, 1_500, 32);
    let run_config = RunConfig { threads: 2, batch_size: 500, quant: false, record_alignments: false, collect_junctions: false };
    let mut group = c.benchmark_group("ablation_anchor_cap");
    group.sample_size(10);
    group.throughput(Throughput::Elements(reads.len() as u64));
    for cap in [10u32, 50, 200] {
        let mut params = AlignParams::default();
        params.anchor_multimap_nmax = cap;
        params.out_filter_multimap_nmax = 20;
        group.bench_with_input(BenchmarkId::from_parameter(cap), &params, |b, params| {
            // Run on the repetitive release-108 index, where the cap actually bites.
            let runner = Runner::new(&sub.index_108, params.clone(), run_config.clone()).expect("runner");
            b.iter(|| runner.run(&reads, None, None, None).expect("run").final_snapshot.processed);
        });
    }
    group.finish();
}

fn bench_checkpoint_fraction(c: &mut Criterion) {
    let sub = Substrate::build(ensembl_params(Scale::Test)).expect("substrate");
    let sc_reads: Vec<FastqRecord> = ReadSimulator::new(
        &sub.asm_111,
        &sub.annotation,
        SimulatorParams::for_library(LibraryType::SingleCell3Prime),
        33,
    )
    .expect("simulator")
    .simulate(6_000, "CF")
    .into_iter()
    .map(|r| r.fastq)
    .collect();
    let run_config = RunConfig { threads: 2, batch_size: 300, quant: false, record_alignments: false, collect_junctions: false };
    let runner = Runner::new(&sub.index_111, AlignParams::default(), run_config).expect("runner");
    let mut group = c.benchmark_group("ablation_checkpoint_fraction");
    group.sample_size(10);
    for frac in [0.02f64, 0.10, 0.25, 0.50] {
        let policy = EarlyStopPolicy { check_fraction: frac, ..EarlyStopPolicy::default() };
        group.bench_with_input(BenchmarkId::from_parameter(frac), &policy, |b, policy| {
            b.iter(|| {
                runner
                    .run(&sc_reads, None, Some(policy as &dyn RunMonitor), None)
                    .expect("run")
                    .final_snapshot
                    .processed
            });
        });
    }
    group.finish();
}

fn bench_thread_scaling(c: &mut Criterion) {
    let sub = Substrate::build(ensembl_params(Scale::Test)).expect("substrate");
    let reads = bulk_reads(&sub, 4_000, 34);
    let mut group = c.benchmark_group("ablation_thread_scaling");
    group.sample_size(10);
    group.throughput(Throughput::Elements(reads.len() as u64));
    for threads in [1usize, 2, 4, 8] {
        let run_config =
            RunConfig { threads, batch_size: 1_000, quant: false, record_alignments: false, collect_junctions: false };
        group.bench_with_input(BenchmarkId::from_parameter(threads), &run_config, |b, rc| {
            let runner = Runner::new(&sub.index_111, AlignParams::default(), rc.clone()).expect("runner");
            b.iter(|| runner.run(&reads, None, None, None).expect("run").final_snapshot.processed);
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_prefix_depth,
    bench_anchor_cap,
    bench_checkpoint_fraction,
    bench_thread_scaling
);
criterion_main!(benches);
