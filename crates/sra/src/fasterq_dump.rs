//! `fasterq-dump` tool model — pipeline step 2.
//!
//! Converts an SRA-lite archive to FASTQ records. The decode itself is real (and
//! rayon-parallel, like the multi-threaded real tool); the modeled duration charges
//! the *output* volume against a per-thread throughput, matching the real tool's
//! I/O-bound behaviour where FASTQ text dominates.

use crate::accession::LibraryLayout;
use crate::archive::SraArchive;
use crate::SraError;
use genomics::FastqRecord;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Conversion throughput model.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DumpModel {
    /// FASTQ bytes produced per second per thread.
    pub bytes_per_sec_per_thread: f64,
    /// Threads the tool runs with (`-e` flag).
    pub threads: usize,
}

impl Default for DumpModel {
    /// ~80 MB/s/thread with 4 threads, the ballpark of fasterq-dump on gp3 EBS.
    fn default() -> Self {
        DumpModel { bytes_per_sec_per_thread: 80e6, threads: 4 }
    }
}

/// Result of a dump: the reads plus accounting.
#[derive(Clone, Debug)]
pub struct FasterqOutput {
    /// Decoded reads in archive order (for paired archives: mates interleaved —
    /// use [`FasterqOutput::pairs`] for the `--split-files` view).
    pub reads: Vec<FastqRecord>,
    /// Archive layout.
    pub layout: LibraryLayout,
    /// FASTQ text bytes that would be written.
    pub fastq_bytes: u64,
    /// Modeled conversion time in seconds.
    pub modeled_secs: f64,
}

impl FasterqOutput {
    /// The `--split-files` view of a paired dump. `None` for single-end archives.
    pub fn pairs(&self) -> Option<Vec<(FastqRecord, FastqRecord)>> {
        if self.layout != LibraryLayout::Paired {
            return None;
        }
        Some(self.reads.chunks(2).map(|w| (w[0].clone(), w[1].clone())).collect())
    }

    /// Number of spots dumped.
    pub fn spots(&self) -> u64 {
        match self.layout {
            LibraryLayout::Single => self.reads.len() as u64,
            LibraryLayout::Paired => self.reads.len() as u64 / 2,
        }
    }

    /// Key/value attributes describing the dump, used to annotate the
    /// `fasterq-dump` telemetry span (kept stringly so this crate stays
    /// dependency-free).
    pub fn span_attrs(&self) -> Vec<(&'static str, String)> {
        vec![
            ("spots", self.spots().to_string()),
            ("reads", self.reads.len().to_string()),
            ("fastq_bytes", self.fastq_bytes.to_string()),
            ("layout", format!("{:?}", self.layout)),
        ]
    }
}

/// The `fasterq-dump` tool.
#[derive(Clone, Copy, Debug, Default)]
pub struct FasterqDump {
    /// Throughput model used for time accounting.
    pub model: DumpModel,
}

impl FasterqDump {
    /// Create with a given throughput model.
    pub fn new(model: DumpModel) -> FasterqDump {
        FasterqDump { model }
    }

    /// Convert `archive` to FASTQ records.
    pub fn run(&self, archive: &SraArchive) -> Result<FasterqOutput, SraError> {
        assert!(self.model.threads > 0, "dump threads must be positive");
        let n_reads = archive.n_reads();
        // Parallel decode in chunks (archive records are fixed-size, so indexes are
        // independent).
        let reads: Vec<FastqRecord> = (0..n_reads)
            .into_par_iter()
            .map(|i| archive.decode_read(i))
            .collect::<Result<Vec<_>, _>>()?;
        let fastq_bytes: u64 = reads
            .iter()
            .map(|r| r.id.len() as u64 + 1 + r.seq.len() as u64 + 1 + 2 + r.qual.len() as u64 + 1)
            .sum();
        let rate = self.model.bytes_per_sec_per_thread * self.model.threads as f64;
        Ok(FasterqOutput {
            reads,
            layout: archive.layout,
            fastq_bytes,
            modeled_secs: fastq_bytes as f64 / rate,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accession::LibraryStrategy;
    use genomics::DnaSeq;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn archive(n: usize) -> SraArchive {
        let mut rng = StdRng::seed_from_u64(8);
        let reads: Vec<FastqRecord> = (0..n)
            .map(|i| {
                FastqRecord::with_uniform_quality(
                    format!("SRRD.{}", i + 1),
                    DnaSeq::random(&mut rng, 100),
                    35,
                )
            })
            .collect();
        SraArchive::encode("SRRD", LibraryStrategy::RnaSeqBulk, &reads).unwrap()
    }

    #[test]
    fn dump_recovers_all_reads_in_order() {
        let arc = archive(500);
        let out = FasterqDump::default().run(&arc).unwrap();
        assert_eq!(out.reads.len(), 500);
        assert_eq!(out.reads[0].id, "SRRD.1");
        assert_eq!(out.reads[499].id, "SRRD.500");
        assert_eq!(out.reads, arc.decode_all().unwrap());
    }

    #[test]
    fn fastq_expansion_versus_archive() {
        let arc = archive(200);
        let out = FasterqDump::default().run(&arc).unwrap();
        // FASTQ text re-expands well beyond the packed archive.
        assert!(out.fastq_bytes > 5 * arc.size_bytes(), "{} vs {}", out.fastq_bytes, arc.size_bytes());
    }

    #[test]
    fn modeled_time_scales_with_threads() {
        let arc = archive(300);
        let t1 = FasterqDump::new(DumpModel { bytes_per_sec_per_thread: 1e6, threads: 1 })
            .run(&arc)
            .unwrap()
            .modeled_secs;
        let t4 = FasterqDump::new(DumpModel { bytes_per_sec_per_thread: 1e6, threads: 4 })
            .run(&arc)
            .unwrap()
            .modeled_secs;
        assert!((t1 / t4 - 4.0).abs() < 1e-9, "t1={t1} t4={t4}");
    }

    fn raw_reads(n: usize, seed: u64) -> Vec<FastqRecord> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                FastqRecord::with_uniform_quality(
                    format!("SRRD.{}", i + 1),
                    DnaSeq::random(&mut rng, 100),
                    35,
                )
            })
            .collect()
    }

    #[test]
    fn paired_dump_exposes_split_files_view() {
        let rs = raw_reads(20, 12);
        let pairs: Vec<(FastqRecord, FastqRecord)> =
            rs.chunks(2).map(|w| (w[0].clone(), w[1].clone())).collect();
        let arc =
            SraArchive::encode_paired("SRRD", LibraryStrategy::RnaSeqBulk, &pairs).unwrap();
        let out = FasterqDump::default().run(&arc).unwrap();
        assert_eq!(out.layout, LibraryLayout::Paired);
        assert_eq!(out.spots(), 10);
        let split = out.pairs().unwrap();
        assert_eq!(split.len(), 10);
        for ((o1, o2), (d1, d2)) in pairs.iter().zip(&split) {
            assert_eq!(o1.seq, d1.seq);
            assert_eq!(o2.seq, d2.seq);
        }
        // Single-end dumps have no pairs view.
        let single = SraArchive::encode("S", LibraryStrategy::RnaSeqBulk, &rs).unwrap();
        assert!(FasterqDump::default().run(&single).unwrap().pairs().is_none());
    }

    #[test]
    fn empty_archive_dumps_empty() {
        let arc = SraArchive::encode("E", LibraryStrategy::RnaSeqBulk, &[]).unwrap();
        let out = FasterqDump::default().run(&arc).unwrap();
        assert!(out.reads.is_empty());
        assert_eq!(out.fastq_bytes, 0);
        assert_eq!(out.modeled_secs, 0.0);
    }
}
