//! SRA-lite binary container.
//!
//! A compact format standing in for NCBI's `.sra`: fixed header, then per-read
//! records with 2-bit packed bases and a single representative quality byte (real SRA
//! also column-compresses qualities; one byte preserves the size *shape*: packed
//! archives re-expand ~8× when dumped to FASTQ, which is what makes `fasterq-dump` a
//! real pipeline stage worth modeling).

use crate::accession::{LibraryLayout, LibraryStrategy};
use crate::SraError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use genomics::{DnaSeq, FastqRecord};

/// Magic bytes opening every archive.
pub const MAGIC: &[u8; 8] = b"SRALITE2";
/// Fixed header size in bytes (magic + strategy + layout + reads + read_len + id
/// length slot).
pub const HEADER_SIZE: usize = 8 + 1 + 1 + 8 + 4 + 4;

/// A decoded-on-demand SRA archive.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SraArchive {
    /// Accession id this archive belongs to.
    pub accession: String,
    /// Library strategy recorded in the header.
    pub strategy: LibraryStrategy,
    /// Library layout (paired archives store mates interleaved: r1, r2, r1, r2...).
    pub layout: LibraryLayout,
    /// Read length (uniform; the simulators emit fixed-length reads).
    pub read_len: u32,
    /// The encoded payload.
    blob: Bytes,
}

impl SraArchive {
    /// Encode single-end reads into an archive. All reads must share `read_len` bases.
    pub fn encode(
        accession: &str,
        strategy: LibraryStrategy,
        reads: &[FastqRecord],
    ) -> Result<SraArchive, SraError> {
        Self::encode_with_layout(accession, strategy, LibraryLayout::Single, reads)
    }

    /// Encode paired-end reads: mates are stored interleaved (r1, r2 per spot).
    pub fn encode_paired(
        accession: &str,
        strategy: LibraryStrategy,
        pairs: &[(FastqRecord, FastqRecord)],
    ) -> Result<SraArchive, SraError> {
        let mut flat = Vec::with_capacity(pairs.len() * 2);
        for (r1, r2) in pairs {
            flat.push(r1.clone());
            flat.push(r2.clone());
        }
        Self::encode_with_layout(accession, strategy, LibraryLayout::Paired, &flat)
    }

    fn encode_with_layout(
        accession: &str,
        strategy: LibraryStrategy,
        layout: LibraryLayout,
        reads: &[FastqRecord],
    ) -> Result<SraArchive, SraError> {
        let read_len = reads.first().map_or(0, |r| r.seq.len() as u32);
        if reads.iter().any(|r| r.seq.len() as u32 != read_len) {
            return Err(SraError::InvalidParams("reads must have uniform length".into()));
        }
        let packed_per_read = (read_len as usize).div_ceil(4);
        let mut buf =
            BytesMut::with_capacity(HEADER_SIZE + accession.len() + reads.len() * (packed_per_read + 1));
        buf.put_slice(MAGIC);
        buf.put_u8(strategy_code(strategy));
        buf.put_u8(match layout {
            LibraryLayout::Single => 0,
            LibraryLayout::Paired => 1,
        });
        buf.put_u64_le(reads.len() as u64);
        buf.put_u32_le(read_len);
        buf.put_u32_le(accession.len() as u32);
        buf.put_slice(accession.as_bytes());
        for r in reads {
            // 2-bit pack.
            let mut word = 0u8;
            for (i, &code) in r.seq.codes().iter().enumerate() {
                word |= code << ((i % 4) * 2);
                if i % 4 == 3 {
                    buf.put_u8(word);
                    word = 0;
                }
            }
            if !(read_len as usize).is_multiple_of(4) {
                buf.put_u8(word);
            }
            // Representative quality: the mean Phred rounded.
            buf.put_u8(r.mean_quality().round() as u8);
        }
        Ok(SraArchive {
            accession: accession.to_string(),
            strategy,
            layout,
            read_len,
            blob: buf.freeze(),
        })
    }

    /// Wrap raw bytes (e.g. fetched from the object store), validating the header.
    pub fn from_bytes(blob: Bytes) -> Result<SraArchive, SraError> {
        let mut b = blob.clone();
        if b.remaining() < HEADER_SIZE {
            return Err(SraError::CorruptArchive("truncated header".into()));
        }
        let mut magic = [0u8; 8];
        b.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(SraError::CorruptArchive("bad magic".into()));
        }
        let strategy = strategy_from_code(b.get_u8())?;
        let layout = match b.get_u8() {
            0 => LibraryLayout::Single,
            1 => LibraryLayout::Paired,
            other => return Err(SraError::CorruptArchive(format!("layout code {other}"))),
        };
        let n_reads = b.get_u64_le();
        let read_len = b.get_u32_le();
        let id_len = b.get_u32_le() as usize;
        if id_len > 256 || b.remaining() < id_len {
            return Err(SraError::CorruptArchive("bad id length".into()));
        }
        let accession = String::from_utf8(b.copy_to_bytes(id_len).to_vec())
            .map_err(|_| SraError::CorruptArchive("non-utf8 accession".into()))?;
        let per_read = (read_len as usize).div_ceil(4) + 1;
        if b.remaining() as u64 != n_reads * per_read as u64 {
            return Err(SraError::CorruptArchive(format!(
                "payload is {} bytes, expected {}",
                b.remaining(),
                n_reads * per_read as u64
            )));
        }
        if layout == LibraryLayout::Paired && !n_reads.is_multiple_of(2) {
            return Err(SraError::CorruptArchive("paired archive with odd read count".into()));
        }
        Ok(SraArchive { accession, strategy, layout, read_len, blob })
    }

    /// Reads per spot under this archive's layout.
    fn reads_per_spot(&self) -> u64 {
        match self.layout {
            LibraryLayout::Single => 1,
            LibraryLayout::Paired => 2,
        }
    }

    /// Total reads stored (mates count individually).
    pub fn n_reads(&self) -> u64 {
        let per_read = (self.read_len as usize).div_ceil(4) + 1;
        let payload = self.blob.len() - HEADER_SIZE - self.accession.len();
        (payload / per_read) as u64
    }

    /// Number of spots stored (single: reads; paired: mate pairs).
    pub fn spots(&self) -> u64 {
        self.n_reads() / self.reads_per_spot()
    }

    /// Total archive size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.blob.len() as u64
    }

    /// The raw bytes (for storing in the object store).
    pub fn bytes(&self) -> Bytes {
        self.blob.clone()
    }

    /// Decode the read at flat index `i` (0-based; paired archives interleave mates).
    pub fn decode_read(&self, i: u64) -> Result<FastqRecord, SraError> {
        if i >= self.n_reads() {
            return Err(SraError::CorruptArchive(format!("read index {i} out of range")));
        }
        let per_read = (self.read_len as usize).div_ceil(4) + 1;
        let payload_start = HEADER_SIZE + self.accession.len();
        let off = payload_start + i as usize * per_read;
        let packed = &self.blob[off..off + per_read - 1];
        let qual = self.blob[off + per_read - 1];
        let mut codes = Vec::with_capacity(self.read_len as usize);
        for j in 0..self.read_len as usize {
            codes.push((packed[j / 4] >> ((j % 4) * 2)) & 0b11);
        }
        let id = match self.layout {
            LibraryLayout::Single => format!("{}.{}", self.accession, i + 1),
            LibraryLayout::Paired => {
                format!("{}.{}/{}", self.accession, i / 2 + 1, i % 2 + 1)
            }
        };
        Ok(FastqRecord::with_uniform_quality(id, DnaSeq::from_codes(codes), qual))
    }

    /// Decode the mate pair at spot `i` (paired archives only).
    pub fn decode_pair(&self, i: u64) -> Result<(FastqRecord, FastqRecord), SraError> {
        if self.layout != LibraryLayout::Paired {
            return Err(SraError::InvalidParams("decode_pair on a single-end archive".into()));
        }
        Ok((self.decode_read(2 * i)?, self.decode_read(2 * i + 1)?))
    }

    /// Decode every read (see [`crate::fasterq_dump`] for the parallel tool model).
    pub fn decode_all(&self) -> Result<Vec<FastqRecord>, SraError> {
        (0..self.n_reads()).map(|i| self.decode_read(i)).collect()
    }

    /// Decode every mate pair (paired archives only).
    pub fn decode_all_pairs(&self) -> Result<Vec<(FastqRecord, FastqRecord)>, SraError> {
        (0..self.spots()).map(|i| self.decode_pair(i)).collect()
    }
}

fn strategy_code(s: LibraryStrategy) -> u8 {
    match s {
        LibraryStrategy::RnaSeqBulk => 0,
        LibraryStrategy::SingleCell => 1,
    }
}

fn strategy_from_code(c: u8) -> Result<LibraryStrategy, SraError> {
    match c {
        0 => Ok(LibraryStrategy::RnaSeqBulk),
        1 => Ok(LibraryStrategy::SingleCell),
        other => Err(SraError::CorruptArchive(format!("strategy code {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn reads(n: usize, len: usize, seed: u64) -> Vec<FastqRecord> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                FastqRecord::with_uniform_quality(
                    format!("SRRX.{}", i + 1),
                    DnaSeq::random(&mut rng, len),
                    35,
                )
            })
            .collect()
    }

    #[test]
    fn encode_decode_round_trips_sequences() {
        let rs = reads(50, 100, 1);
        let arc = SraArchive::encode("SRRX", LibraryStrategy::RnaSeqBulk, &rs).unwrap();
        assert_eq!(arc.spots(), 50);
        let back = arc.decode_all().unwrap();
        for (orig, dec) in rs.iter().zip(&back) {
            assert_eq!(dec.seq, orig.seq);
            assert_eq!(dec.id, orig.id);
            assert_eq!(dec.qual[0], 35);
        }
    }

    #[test]
    fn handles_read_lengths_not_divisible_by_four() {
        for len in [1usize, 3, 5, 99, 101] {
            let rs = reads(7, len, len as u64);
            let arc = SraArchive::encode("S", LibraryStrategy::SingleCell, &rs).unwrap();
            let back = arc.decode_all().unwrap();
            assert_eq!(back.len(), 7);
            for (o, d) in rs.iter().zip(&back) {
                assert_eq!(o.seq, d.seq, "len {len}");
            }
        }
    }

    #[test]
    fn from_bytes_validates_and_round_trips() {
        let rs = reads(10, 100, 2);
        let arc = SraArchive::encode("SRRY", LibraryStrategy::SingleCell, &rs).unwrap();
        let again = SraArchive::from_bytes(arc.bytes()).unwrap();
        assert_eq!(again, arc);
        assert_eq!(again.strategy, LibraryStrategy::SingleCell);

        // Corrupt magic.
        let mut bad = arc.bytes().to_vec();
        bad[0] = b'X';
        assert!(SraArchive::from_bytes(Bytes::from(bad)).is_err());
        // Truncated payload.
        let bad = arc.bytes().slice(0..arc.bytes().len() - 3);
        assert!(SraArchive::from_bytes(bad).is_err());
        // Bad strategy code.
        let mut bad = arc.bytes().to_vec();
        bad[8] = 9;
        assert!(SraArchive::from_bytes(Bytes::from(bad)).is_err());
        // Bad layout code.
        let mut bad = arc.bytes().to_vec();
        bad[9] = 7;
        assert!(SraArchive::from_bytes(Bytes::from(bad)).is_err());
    }

    #[test]
    fn rejects_nonuniform_reads() {
        let mut rs = reads(3, 100, 3);
        rs.push(FastqRecord::with_uniform_quality("x".into(), "ACGT".parse().unwrap(), 30));
        assert!(SraArchive::encode("S", LibraryStrategy::RnaSeqBulk, &rs).is_err());
    }

    #[test]
    fn empty_archive_is_fine() {
        let arc = SraArchive::encode("S", LibraryStrategy::RnaSeqBulk, &[]).unwrap();
        assert_eq!(arc.spots(), 0);
        assert!(arc.decode_all().unwrap().is_empty());
        assert!(arc.decode_read(0).is_err());
    }

    #[test]
    fn paired_archive_round_trips_mates() {
        let rs = reads(40, 100, 9);
        let pairs: Vec<(FastqRecord, FastqRecord)> =
            rs.chunks(2).map(|w| (w[0].clone(), w[1].clone())).collect();
        let arc = SraArchive::encode_paired("SRRP", LibraryStrategy::RnaSeqBulk, &pairs).unwrap();
        assert_eq!(arc.layout, LibraryLayout::Paired);
        assert_eq!(arc.spots(), 20);
        assert_eq!(arc.n_reads(), 40);
        let back = arc.decode_all_pairs().unwrap();
        for ((o1, o2), (d1, d2)) in pairs.iter().zip(&back) {
            assert_eq!(o1.seq, d1.seq);
            assert_eq!(o2.seq, d2.seq);
        }
        assert!(back[0].0.id.ends_with(".1/1"));
        assert!(back[0].1.id.ends_with(".1/2"));
        // decode_pair on single-end errors.
        let single = SraArchive::encode("S", LibraryStrategy::RnaSeqBulk, &rs).unwrap();
        assert!(single.decode_pair(0).is_err());
        // Round trip through bytes keeps layout.
        let again = SraArchive::from_bytes(arc.bytes()).unwrap();
        assert_eq!(again.layout, LibraryLayout::Paired);
        assert_eq!(again.spots(), 20);
    }

    #[test]
    fn size_matches_meta_formula() {
        use crate::accession::AccessionMeta;
        let rs = reads(100, 100, 4);
        let arc = SraArchive::encode("SRRZ", LibraryStrategy::RnaSeqBulk, &rs).unwrap();
        let meta = AccessionMeta {
            id: "SRRZ".into(),
            strategy: LibraryStrategy::RnaSeqBulk,
            spots: 100,
            read_len: 100,
            layout: LibraryLayout::Single,
            tissue: "x".into(),
        };
        // Meta formula excludes the variable-length id; allow that slack.
        let diff = arc.size_bytes() as i64 - meta.sra_size_bytes() as i64;
        assert!(diff.unsigned_abs() <= 16, "diff {diff}");
    }
}
