//! Deterministic SRA repository.
//!
//! Binds a catalog of accessions to a reference assembly + annotation: fetching an
//! accession simulates its reads (seeded by the accession id, so content is stable
//! across fetches and processes) and packs them into an [`SraArchive`]. Bulk
//! accessions use the high-mappability bulk simulator; single-cell accessions use the
//! low-mappability single-cell simulator — the ground truth behind Fig. 4's early
//! stops.

use std::collections::HashMap;
use std::sync::Arc;

use crate::accession::AccessionMeta;
use crate::archive::SraArchive;
use crate::SraError;
use genomics::{Annotation, Assembly, ReadSimulator, SimulatorParams};

/// The repository: catalog + content generators.
pub struct SraRepository {
    assembly: Arc<Assembly>,
    annotation: Arc<Annotation>,
    catalog: HashMap<String, AccessionMeta>,
    /// Optional cap applied to spot counts at fetch time (scale experiments down
    /// without changing the catalog's size *metadata*).
    spot_cap: Option<u64>,
}

impl SraRepository {
    /// Create a repository serving `catalog` with reads simulated from
    /// `assembly`/`annotation`.
    pub fn new(
        assembly: Arc<Assembly>,
        annotation: Arc<Annotation>,
        catalog: Vec<AccessionMeta>,
    ) -> SraRepository {
        SraRepository {
            assembly,
            annotation,
            catalog: catalog.into_iter().map(|m| (m.id.clone(), m)).collect(),
            spot_cap: None,
        }
    }

    /// Cap the number of reads actually generated per fetch (experiment scaling).
    /// Metadata (`spots`, sizes) is unaffected.
    pub fn with_spot_cap(mut self, cap: u64) -> SraRepository {
        self.spot_cap = Some(cap);
        self
    }

    /// Number of accessions in the catalog.
    pub fn len(&self) -> usize {
        self.catalog.len()
    }

    /// True when the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.catalog.is_empty()
    }

    /// Catalog metadata for an accession.
    pub fn meta(&self, id: &str) -> Result<&AccessionMeta, SraError> {
        self.catalog.get(id).ok_or_else(|| SraError::UnknownAccession(id.to_string()))
    }

    /// All accession ids, sorted (stable iteration order for experiments).
    pub fn ids(&self) -> Vec<String> {
        let mut v: Vec<String> = self.catalog.keys().cloned().collect();
        v.sort();
        v
    }

    /// Materialize an accession's archive (the repository side of `prefetch`).
    pub fn fetch(&self, id: &str) -> Result<SraArchive, SraError> {
        let meta = self.meta(id)?;
        let n = self.spot_cap.map_or(meta.spots, |cap| meta.spots.min(cap));
        let mut params = SimulatorParams::for_library(meta.strategy.library_type());
        params.read_len = meta.read_len as usize;
        let mut sim =
            ReadSimulator::new(&self.assembly, &self.annotation, params, meta.content_seed())?;
        match meta.layout {
            crate::accession::LibraryLayout::Single => {
                let reads: Vec<genomics::FastqRecord> =
                    sim.simulate(n as usize, &meta.id).into_iter().map(|r| r.fastq).collect();
                SraArchive::encode(&meta.id, meta.strategy, &reads)
            }
            crate::accession::LibraryLayout::Paired => {
                let pairs: Vec<(genomics::FastqRecord, genomics::FastqRecord)> = sim
                    .simulate_pairs(n as usize, &meta.id)
                    .into_iter()
                    .map(|p| (p.r1, p.r2))
                    .collect();
                SraArchive::encode_paired(&meta.id, meta.strategy, &pairs)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accession::{CatalogParams, LibraryStrategy};
    use genomics::annotation::AnnotationParams;
    use genomics::{EnsemblGenerator, EnsemblParams, Release};

    fn repo() -> SraRepository {
        let g = EnsemblGenerator::new(EnsemblParams::tiny()).unwrap();
        let asm = Arc::new(g.generate(Release::R111));
        let ann =
            Arc::new(Annotation::simulate(&asm, &g, &AnnotationParams::default()).unwrap());
        let mut params = CatalogParams::default();
        params.n_accessions = 20;
        params.bulk_spots_median = 200;
        params.single_cell_fraction = 0.2;
        SraRepository::new(asm, ann, params.generate().unwrap())
    }

    #[test]
    fn fetch_is_deterministic() {
        let r = repo();
        let id = &r.ids()[0];
        let a = r.fetch(id).unwrap();
        let b = r.fetch(id).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_accessions_have_different_content() {
        let r = repo();
        let ids = r.ids();
        let a = r.fetch(&ids[0]).unwrap();
        let b = r.fetch(&ids[1]).unwrap();
        assert_ne!(a.bytes(), b.bytes());
    }

    #[test]
    fn archive_matches_catalog_metadata() {
        let r = repo();
        for id in r.ids().iter().take(5) {
            let meta = r.meta(id).unwrap().clone();
            let arc = r.fetch(id).unwrap();
            assert_eq!(arc.spots(), meta.spots);
            assert_eq!(arc.read_len, meta.read_len);
            assert_eq!(arc.strategy, meta.strategy);
            assert_eq!(arc.accession, meta.id);
        }
    }

    #[test]
    fn spot_cap_limits_generated_reads_only() {
        let r = repo().with_spot_cap(50);
        let id = r.ids()[0].clone();
        let meta_spots = r.meta(&id).unwrap().spots;
        assert!(meta_spots > 50, "test premise: accession larger than cap");
        let arc = r.fetch(&id).unwrap();
        assert_eq!(arc.spots(), 50);
        assert_eq!(r.meta(&id).unwrap().spots, meta_spots, "metadata unchanged");
    }

    #[test]
    fn paired_accessions_yield_paired_archives() {
        let g = EnsemblGenerator::new(EnsemblParams::tiny()).unwrap();
        let asm = Arc::new(g.generate(Release::R111));
        let ann =
            Arc::new(Annotation::simulate(&asm, &g, &AnnotationParams::default()).unwrap());
        let mut params = CatalogParams::default();
        params.n_accessions = 10;
        params.bulk_spots_median = 150;
        params.single_cell_fraction = 0.0;
        params.paired_fraction = 1.0;
        let repo = SraRepository::new(asm, ann, params.generate().unwrap());
        let id = repo.ids()[0].clone();
        let meta = repo.meta(&id).unwrap().clone();
        assert_eq!(meta.layout, crate::accession::LibraryLayout::Paired);
        let arc = repo.fetch(&id).unwrap();
        assert_eq!(arc.layout, crate::accession::LibraryLayout::Paired);
        assert_eq!(arc.spots(), meta.spots);
        assert_eq!(arc.n_reads(), meta.spots * 2);
        let pairs = arc.decode_all_pairs().unwrap();
        assert_eq!(pairs.len() as u64, meta.spots);
    }

    #[test]
    fn unknown_accession_errors() {
        let r = repo();
        assert!(matches!(r.fetch("SRR404"), Err(SraError::UnknownAccession(_))));
        assert!(r.meta("SRR404").is_err());
    }

    #[test]
    fn single_cell_archives_decode_with_matching_strategy() {
        let r = repo();
        let sc_id = r
            .ids()
            .into_iter()
            .find(|id| r.meta(id).unwrap().strategy == LibraryStrategy::SingleCell)
            .expect("catalog has single-cell accessions");
        let arc = r.fetch(&sc_id).unwrap();
        assert_eq!(arc.strategy, LibraryStrategy::SingleCell);
        let reads = arc.decode_all().unwrap();
        assert_eq!(reads.len() as u64, arc.spots());
    }
}
