//! Simulated NCBI Sequence Read Archive.
//!
//! The paper's pipeline starts by pulling accessions from the SRA (>30 PB of
//! sequencing data) with `prefetch` and converting them to FASTQ with
//! `fasterq-dump`. This crate provides the closest synthetic equivalent:
//!
//! * [`accession`] — accession metadata (`SRR…` ids, library strategy, spot counts,
//!   file sizes) and the workload catalog generator with the paper's mix (a few
//!   percent single-cell accessions carrying ~10× the reads of a bulk library —
//!   which is why the 38 early-stopped runs account for 19.5 % of total time).
//! * [`archive`] — the SRA-lite binary container (2-bit packed reads + quality
//!   summary), with encode/decode and corruption detection.
//! * [`repository`] — a deterministic repository: the same accession id always
//!   yields the same reads, generated from the bound assembly/annotation with the
//!   library type's simulator.
//! * [`prefetch`] — the `prefetch` tool model: byte-accurate transfer-time accounting
//!   against a network model (no wall-clock sleeping; the cloud layer charges time).
//! * [`fasterq_dump`] — the `fasterq-dump` tool model: parallel decode to FASTQ with
//!   a throughput model.

pub mod accession;
pub mod archive;
pub mod error;
pub mod fasterq_dump;
pub mod prefetch;
pub mod repository;

pub use accession::{AccessionMeta, CatalogParams, LibraryStrategy};
pub use archive::SraArchive;
pub use error::SraError;
pub use fasterq_dump::{FasterqDump, FasterqOutput};
pub use prefetch::{NetworkModel, Prefetch, PrefetchOutput};
pub use repository::SraRepository;
