//! `prefetch` tool model — pipeline step 1.
//!
//! Downloads an accession's `.sra` from the repository. The real tool's cost is
//! network transfer; [`NetworkModel`] charges `latency + bytes/bandwidth` seconds of
//! *modeled* time (nothing sleeps — the cloud simulator advances its own clock by the
//! returned durations).

use crate::repository::SraRepository;
use crate::{SraArchive, SraError};
use serde::{Deserialize, Serialize};

/// Simple network cost model.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Sustained throughput in bytes/second.
    pub bandwidth_bytes_per_sec: f64,
    /// Fixed per-transfer latency in seconds (connection + object lookup).
    pub latency_secs: f64,
}

impl Default for NetworkModel {
    /// ~200 MB/s sustained (EC2-to-S3/SRA mirror within region) with 200 ms setup.
    fn default() -> Self {
        NetworkModel { bandwidth_bytes_per_sec: 200e6, latency_secs: 0.2 }
    }
}

impl NetworkModel {
    /// Modeled seconds to move `bytes`.
    pub fn transfer_secs(&self, bytes: u64) -> f64 {
        assert!(self.bandwidth_bytes_per_sec > 0.0, "bandwidth must be positive");
        self.latency_secs + bytes as f64 / self.bandwidth_bytes_per_sec
    }
}

/// Result of a prefetch: the archive plus accounting.
#[derive(Clone, Debug)]
pub struct PrefetchOutput {
    /// The downloaded archive.
    pub archive: SraArchive,
    /// Bytes transferred.
    pub bytes: u64,
    /// Modeled transfer time in seconds.
    pub modeled_secs: f64,
}

/// The `prefetch` tool bound to a network model.
#[derive(Clone, Copy, Debug, Default)]
pub struct Prefetch {
    /// Network cost model used for time accounting.
    pub network: NetworkModel,
}

impl Prefetch {
    /// Create with a given network model.
    pub fn new(network: NetworkModel) -> Prefetch {
        Prefetch { network }
    }

    /// Download `accession` from `repo`.
    pub fn run(&self, repo: &SraRepository, accession: &str) -> Result<PrefetchOutput, SraError> {
        let archive = repo.fetch(accession)?;
        let bytes = archive.size_bytes();
        Ok(PrefetchOutput { archive, bytes, modeled_secs: self.network.transfer_secs(bytes) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accession::CatalogParams;
    use genomics::annotation::AnnotationParams;
    use genomics::{Annotation, EnsemblGenerator, EnsemblParams, Release};
    use std::sync::Arc;

    fn repo() -> SraRepository {
        let g = EnsemblGenerator::new(EnsemblParams::tiny()).unwrap();
        let asm = Arc::new(g.generate(Release::R111));
        let ann =
            Arc::new(Annotation::simulate(&asm, &g, &AnnotationParams::default()).unwrap());
        let mut params = CatalogParams::default();
        params.n_accessions = 5;
        params.bulk_spots_median = 300;
        SraRepository::new(asm, ann, params.generate().unwrap())
    }

    #[test]
    fn transfer_time_is_latency_plus_linear() {
        let n = NetworkModel { bandwidth_bytes_per_sec: 100.0, latency_secs: 1.0 };
        assert!((n.transfer_secs(0) - 1.0).abs() < 1e-12);
        assert!((n.transfer_secs(1000) - 11.0).abs() < 1e-12);
    }

    #[test]
    fn prefetch_returns_archive_with_accounting() {
        let r = repo();
        let id = r.ids()[0].clone();
        let p = Prefetch::new(NetworkModel { bandwidth_bytes_per_sec: 1e6, latency_secs: 0.5 });
        let out = p.run(&r, &id).unwrap();
        assert_eq!(out.bytes, out.archive.size_bytes());
        let expect = 0.5 + out.bytes as f64 / 1e6;
        assert!((out.modeled_secs - expect).abs() < 1e-9);
        assert_eq!(out.archive.accession, id);
    }

    #[test]
    fn bigger_accessions_cost_more_time() {
        let r = repo();
        let p = Prefetch::default();
        let mut costs: Vec<(u64, f64)> = r
            .ids()
            .iter()
            .map(|id| {
                let out = p.run(&r, id).unwrap();
                (out.bytes, out.modeled_secs)
            })
            .collect();
        costs.sort_by_key(|&(b, _)| b);
        assert!(costs.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn unknown_accession_propagates() {
        let r = repo();
        assert!(Prefetch::default().run(&r, "SRRNOPE").is_err());
    }
}
