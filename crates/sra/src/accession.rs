//! Accession metadata and workload catalog generation.
//!
//! The paper processes a curated subset of the SRA: human RNA-seq accessions selected
//! by tissue and technical parameters (7216 files, 17 TB). The catalog generator
//! reproduces the *distributional shape* that drives both experiments:
//!
//! * log-normal spot counts (file sizes spread over an order of magnitude — Fig. 3's
//!   49 files average 15.9 GiB with wide variance);
//! * a small fraction of single-cell libraries (the paper found 38/1000 ≈ 3.8 %)
//!   whose spot counts run ~10× a bulk library — that multiplier is what lets 3.8 %
//!   of runs carry 19.5 % of total STAR time in Fig. 4.

use crate::SraError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Library strategy recorded in SRA metadata (the subset we model).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LibraryStrategy {
    /// Bulk poly-A RNA-seq.
    RnaSeqBulk,
    /// Single-cell 3' RNA-seq.
    SingleCell,
}

/// Library layout recorded in SRA metadata.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LibraryLayout {
    /// One read per spot.
    Single,
    /// Two mates per spot (`fasterq-dump --split-files` territory).
    Paired,
}

impl LibraryStrategy {
    /// The corresponding read-simulator library type.
    pub fn library_type(self) -> genomics::LibraryType {
        match self {
            LibraryStrategy::RnaSeqBulk => genomics::LibraryType::BulkPolyA,
            LibraryStrategy::SingleCell => genomics::LibraryType::SingleCell3Prime,
        }
    }
}

/// Tissues used for catalog metadata (cosmetic but keeps records realistic).
const TISSUES: &[&str] =
    &["lung", "liver", "brain", "heart", "kidney", "muscle", "skin", "blood", "colon", "breast"];

/// Metadata for one SRA accession.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessionMeta {
    /// Accession id, e.g. `"SRR1000042"`.
    pub id: String,
    /// Library strategy.
    pub strategy: LibraryStrategy,
    /// Number of spots (a spot is one read for single layout, a mate pair for
    /// paired layout).
    pub spots: u64,
    /// Read length in bases (per mate).
    pub read_len: u32,
    /// Library layout.
    pub layout: LibraryLayout,
    /// Source tissue label.
    pub tissue: String,
}

impl AccessionMeta {
    /// Reads per spot for this layout.
    pub fn reads_per_spot(&self) -> u64 {
        match self.layout {
            LibraryLayout::Single => 1,
            LibraryLayout::Paired => 2,
        }
    }

    /// Size of the `.sra` file in bytes under the SRA-lite container format
    /// (2 bits/base + 1 quality byte per read + fixed header).
    pub fn sra_size_bytes(&self) -> u64 {
        let reads = self.spots * self.reads_per_spot();
        let packed = (reads * self.read_len as u64).div_ceil(4);
        packed + reads + crate::archive::HEADER_SIZE as u64
    }

    /// Size of the FASTQ output in bytes after `fasterq-dump`
    /// (4 text lines per read: `@id`, bases, `+`, qualities; both mate files for
    /// paired layout).
    pub fn fastq_size_bytes(&self) -> u64 {
        let per_read = (self.id.len() as u64 + 8) + self.read_len as u64 + 2 + self.read_len as u64 + 4;
        self.spots * self.reads_per_spot() * per_read
    }

    /// Deterministic per-accession RNG seed (stable hash of the id).
    pub fn content_seed(&self) -> u64 {
        fnv1a(self.id.as_bytes())
    }
}

/// FNV-1a, used for stable id→seed derivation.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Parameters of the synthetic workload catalog.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CatalogParams {
    /// Seed for metadata generation.
    pub seed: u64,
    /// Number of accessions.
    pub n_accessions: usize,
    /// Fraction of accessions that are single-cell (paper: 38/1000 = 0.038).
    pub single_cell_fraction: f64,
    /// Median spot count of a bulk accession.
    pub bulk_spots_median: u64,
    /// Log-normal σ of bulk spot counts.
    pub bulk_spots_sigma: f64,
    /// Spot multiplier for single-cell accessions (they are ~10× larger).
    pub single_cell_spot_factor: f64,
    /// Read length.
    pub read_len: u32,
    /// Fraction of *bulk* accessions with paired layout (single-cell 3' libraries
    /// are modeled single-end: their biological mate is a barcode read). 0 keeps a
    /// pure single-end catalog.
    pub paired_fraction: f64,
}

impl Default for CatalogParams {
    fn default() -> Self {
        CatalogParams {
            seed: 2024,
            n_accessions: 1000,
            single_cell_fraction: 0.038,
            bulk_spots_median: 4_000,
            bulk_spots_sigma: 0.6,
            single_cell_spot_factor: 10.0,
            read_len: 100,
            paired_fraction: 0.0,
        }
    }
}

impl CatalogParams {
    /// Validate internal consistency.
    pub fn validate(&self) -> Result<(), SraError> {
        if self.n_accessions == 0 {
            return Err(SraError::InvalidParams("n_accessions must be positive".into()));
        }
        if !(0.0..=1.0).contains(&self.single_cell_fraction) {
            return Err(SraError::InvalidParams("single_cell_fraction must be in [0,1]".into()));
        }
        if self.bulk_spots_median == 0 || self.read_len == 0 {
            return Err(SraError::InvalidParams("spot counts and read length must be positive".into()));
        }
        if self.single_cell_spot_factor <= 0.0 {
            return Err(SraError::InvalidParams("single_cell_spot_factor must be positive".into()));
        }
        if !(0.0..=1.0).contains(&self.paired_fraction) {
            return Err(SraError::InvalidParams("paired_fraction must be in [0,1]".into()));
        }
        Ok(())
    }

    /// Generate the catalog. The single-cell count is `round(fraction × n)` placed at
    /// deterministic pseudo-random positions, so the paper's 38/1000 mix is exact.
    pub fn generate(&self) -> Result<Vec<AccessionMeta>, SraError> {
        self.validate()?;
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_mul(0x2545_F491_4F6C_DD1D));
        let n = self.n_accessions;
        let n_sc = (self.single_cell_fraction * n as f64).round() as usize;
        // Choose single-cell positions by partial Fisher-Yates over indices.
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..n_sc.min(n) {
            let j = rng.gen_range(i..n);
            idx.swap(i, j);
        }
        let sc_set: std::collections::HashSet<usize> = idx[..n_sc.min(n)].iter().copied().collect();

        let mut catalog = Vec::with_capacity(n);
        for i in 0..n {
            let strategy =
                if sc_set.contains(&i) { LibraryStrategy::SingleCell } else { LibraryStrategy::RnaSeqBulk };
            let z = gaussian(&mut rng);
            let mut spots =
                (self.bulk_spots_median as f64 * (self.bulk_spots_sigma * z).exp()).max(100.0);
            if strategy == LibraryStrategy::SingleCell {
                spots *= self.single_cell_spot_factor;
            }
            let layout = if strategy == LibraryStrategy::RnaSeqBulk
                && rng.gen_bool(self.paired_fraction)
            {
                LibraryLayout::Paired
            } else {
                LibraryLayout::Single
            };
            catalog.push(AccessionMeta {
                id: format!("SRR{:07}", 1_000_000 + i as u64),
                strategy,
                spots: spots as u64,
                read_len: self.read_len,
                layout,
                tissue: TISSUES[rng.gen_range(0..TISSUES.len())].to_string(),
            });
        }
        Ok(catalog)
    }
}

/// Standard normal via Box–Muller.
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_catalog_matches_paper_mix() {
        let catalog = CatalogParams::default().generate().unwrap();
        assert_eq!(catalog.len(), 1000);
        let sc = catalog.iter().filter(|a| a.strategy == LibraryStrategy::SingleCell).count();
        assert_eq!(sc, 38, "paper: 38 of 1000 accessions are single-cell");
    }

    #[test]
    fn single_cell_accessions_are_much_larger() {
        let catalog = CatalogParams::default().generate().unwrap();
        let mean = |strategy| {
            let v: Vec<u64> =
                catalog.iter().filter(|a| a.strategy == strategy).map(|a| a.spots).collect();
            v.iter().sum::<u64>() as f64 / v.len() as f64
        };
        let ratio = mean(LibraryStrategy::SingleCell) / mean(LibraryStrategy::RnaSeqBulk);
        assert!((5.0..20.0).contains(&ratio), "single-cell/bulk spot ratio {ratio}");
    }

    #[test]
    fn catalog_is_deterministic_and_ids_unique() {
        let a = CatalogParams::default().generate().unwrap();
        let b = CatalogParams::default().generate().unwrap();
        assert_eq!(a, b);
        let ids: std::collections::HashSet<_> = a.iter().map(|m| &m.id).collect();
        assert_eq!(ids.len(), a.len());
    }

    #[test]
    fn sizes_scale_with_spots() {
        let m = AccessionMeta {
            id: "SRR1".into(),
            strategy: LibraryStrategy::RnaSeqBulk,
            spots: 1000,
            read_len: 100,
            layout: LibraryLayout::Single,
            tissue: "lung".into(),
        };
        // 2 bits/base: 1000*100/4 = 25_000 + 1000 qual + header.
        assert!(m.sra_size_bytes() > 26_000);
        assert!(m.sra_size_bytes() < 27_000);
        // FASTQ is text: > 2 bytes/base.
        assert!(m.fastq_size_bytes() > 200_000);
        // FASTQ blows up vs SRA, like real life.
        assert!(m.fastq_size_bytes() > 5 * m.sra_size_bytes());
    }

    #[test]
    fn content_seed_is_stable_and_id_sensitive() {
        let mk = |id: &str| AccessionMeta {
            id: id.into(),
            strategy: LibraryStrategy::RnaSeqBulk,
            spots: 1,
            read_len: 100,
            layout: LibraryLayout::Single,
            tissue: "lung".into(),
        };
        assert_eq!(mk("SRR7").content_seed(), mk("SRR7").content_seed());
        assert_ne!(mk("SRR7").content_seed(), mk("SRR8").content_seed());
    }

    #[test]
    fn invalid_params_rejected() {
        let mut p = CatalogParams::default();
        p.n_accessions = 0;
        assert!(p.generate().is_err());
        let mut p = CatalogParams::default();
        p.single_cell_fraction = 1.2;
        assert!(p.generate().is_err());
        let mut p = CatalogParams::default();
        p.single_cell_spot_factor = 0.0;
        assert!(p.generate().is_err());
    }

    #[test]
    fn paired_fraction_marks_bulk_accessions_only() {
        let mut p = CatalogParams::default();
        p.n_accessions = 200;
        p.paired_fraction = 1.0;
        let catalog = p.generate().unwrap();
        for a in &catalog {
            match a.strategy {
                LibraryStrategy::RnaSeqBulk => assert_eq!(a.layout, LibraryLayout::Paired),
                LibraryStrategy::SingleCell => assert_eq!(a.layout, LibraryLayout::Single),
            }
        }
        // Paired doubles the byte sizes.
        let paired = catalog.iter().find(|a| a.layout == LibraryLayout::Paired).unwrap();
        let mut single = paired.clone();
        single.layout = LibraryLayout::Single;
        assert!(paired.fastq_size_bytes() == 2 * single.fastq_size_bytes());
        assert!(paired.sra_size_bytes() > 2 * single.sra_size_bytes() - 64);
    }

    #[test]
    fn zero_single_cell_fraction_gives_pure_bulk() {
        let mut p = CatalogParams::default();
        p.single_cell_fraction = 0.0;
        p.n_accessions = 50;
        let catalog = p.generate().unwrap();
        assert!(catalog.iter().all(|a| a.strategy == LibraryStrategy::RnaSeqBulk));
    }
}
