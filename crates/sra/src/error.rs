//! Error type for the SRA simulation layer.

use std::fmt;

/// Errors from archive decoding, repository lookups, or tool models.
#[derive(Debug)]
pub enum SraError {
    /// The archive blob is corrupt or truncated.
    CorruptArchive(String),
    /// An accession id is not in the catalog.
    UnknownAccession(String),
    /// Parameters given to a generator/model were inconsistent.
    InvalidParams(String),
    /// An underlying genomics-layer error.
    Genomics(genomics::GenomicsError),
}

impl fmt::Display for SraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SraError::CorruptArchive(m) => write!(f, "corrupt archive: {m}"),
            SraError::UnknownAccession(id) => write!(f, "unknown accession: {id}"),
            SraError::InvalidParams(m) => write!(f, "invalid parameters: {m}"),
            SraError::Genomics(e) => write!(f, "genomics error: {e}"),
        }
    }
}

impl std::error::Error for SraError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SraError::Genomics(e) => Some(e),
            _ => None,
        }
    }
}

impl From<genomics::GenomicsError> for SraError {
    fn from(e: genomics::GenomicsError) -> Self {
        SraError::Genomics(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_accession() {
        let e = SraError::UnknownAccession("SRR999".into());
        assert!(e.to_string().contains("SRR999"));
    }
}
