//! Median-of-ratios size factors and normalized counts.

use crate::matrix::CountsMatrix;
use std::fmt;

/// Errors from normalization.
#[derive(Debug, PartialEq, Eq)]
pub enum DeseqError {
    /// The matrix has no genes or no samples.
    EmptyMatrix,
    /// No gene is expressed in every sample, so geometric means are all zero and
    /// size factors are undefined (DESeq2 errors identically).
    NoCommonlyExpressedGenes,
}

impl fmt::Display for DeseqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeseqError::EmptyMatrix => write!(f, "counts matrix is empty"),
            DeseqError::NoCommonlyExpressedGenes =>

                write!(f, "every gene contains a zero count; cannot compute size factors"),
        }
    }
}

impl std::error::Error for DeseqError {}

/// Per-sample size factors by the median-of-ratios method.
///
/// For gene `g` with counts `k[g][j]`, the reference is the geometric mean
/// `GM[g] = (∏_j k[g][j])^(1/m)`; the size factor of sample `j` is
/// `median_g(k[g][j] / GM[g])` over genes with `GM[g] > 0`.
pub fn size_factors(matrix: &CountsMatrix) -> Result<Vec<f64>, DeseqError> {
    let (n_genes, n_samples) = (matrix.n_genes(), matrix.n_samples());
    if n_genes == 0 || n_samples == 0 {
        return Err(DeseqError::EmptyMatrix);
    }
    // log geometric means; genes with any zero are excluded (log(0) = -inf).
    let mut usable_log_gm: Vec<(usize, f64)> = Vec::new();
    for g in 0..n_genes {
        let row = matrix.row(g);
        if row.iter().all(|&k| k > 0) {
            let mean_log = row.iter().map(|&k| (k as f64).ln()).sum::<f64>() / n_samples as f64;
            usable_log_gm.push((g, mean_log));
        }
    }
    if usable_log_gm.is_empty() {
        return Err(DeseqError::NoCommonlyExpressedGenes);
    }
    let mut factors = Vec::with_capacity(n_samples);
    for j in 0..n_samples {
        let mut log_ratios: Vec<f64> = usable_log_gm
            .iter()
            .map(|&(g, log_gm)| (matrix.get(g, j) as f64).ln() - log_gm)
            .collect();
        log_ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite log ratios"));
        factors.push(median_of_sorted(&log_ratios).exp());
    }
    Ok(factors)
}

fn median_of_sorted(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

/// A normalized (f64) matrix with its size factors.
#[derive(Clone, Debug, PartialEq)]
pub struct NormalizedMatrix {
    /// Gene labels (same order as the input matrix).
    pub gene_ids: Vec<String>,
    /// Sample labels.
    pub sample_ids: Vec<String>,
    /// The size factor of each sample.
    pub size_factors: Vec<f64>,
    /// Row-major normalized counts.
    pub data: Vec<f64>,
}

impl NormalizedMatrix {
    /// The normalized count for `(gene, sample)`.
    pub fn get(&self, gene: usize, sample: usize) -> f64 {
        self.data[gene * self.sample_ids.len() + sample]
    }

    /// Key/value attributes describing the normalization, used to annotate the
    /// campaign-level `deseq` telemetry span (kept stringly so this crate stays
    /// dependency-free).
    pub fn span_attrs(&self) -> Vec<(&'static str, String)> {
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &f in &self.size_factors {
            lo = lo.min(f);
            hi = hi.max(f);
        }
        let mut attrs = vec![
            ("genes", self.gene_ids.len().to_string()),
            ("samples", self.sample_ids.len().to_string()),
        ];
        if !self.size_factors.is_empty() {
            attrs.push(("size_factor_min", format!("{lo:.6}")));
            attrs.push(("size_factor_max", format!("{hi:.6}")));
        }
        attrs
    }
}

/// Normalize a counts matrix: `normalized[g][j] = k[g][j] / size_factor[j]`.
pub fn normalize(matrix: &CountsMatrix) -> Result<NormalizedMatrix, DeseqError> {
    let factors = size_factors(matrix)?;
    let n_samples = matrix.n_samples();
    let mut data = Vec::with_capacity(matrix.n_genes() * n_samples);
    for g in 0..matrix.n_genes() {
        for (j, &f) in factors.iter().enumerate() {
            data.push(matrix.get(g, j) as f64 / f);
        }
    }
    Ok(NormalizedMatrix {
        gene_ids: matrix.gene_ids().to_vec(),
        sample_ids: matrix.sample_ids().to_vec(),
        size_factors: factors,
        data,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(rows: Vec<Vec<u64>>) -> CountsMatrix {
        let n_samples = rows[0].len();
        CountsMatrix::from_rows(
            (0..rows.len()).map(|i| format!("g{i}")).collect(),
            (0..n_samples).map(|i| format!("s{i}")).collect(),
            rows,
        )
    }

    #[test]
    fn identical_samples_get_unit_factors() {
        let m = matrix(vec![vec![10, 10], vec![5, 5], vec![100, 100]]);
        let f = size_factors(&m).unwrap();
        for x in f {
            assert!((x - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn pure_depth_difference_is_recovered() {
        // Sample 2 is exactly 3× deeper: factors must be in ratio 3 and normalized
        // counts equal.
        let m = matrix(vec![vec![10, 30], vec![20, 60], vec![7, 21]]);
        let f = size_factors(&m).unwrap();
        assert!((f[1] / f[0] - 3.0).abs() < 1e-9, "{f:?}");
        let n = normalize(&m).unwrap();
        for g in 0..3 {
            assert!((n.get(g, 0) - n.get(g, 1)).abs() < 1e-9);
        }
    }

    #[test]
    fn geometric_mean_of_factors_is_one_for_balanced_designs() {
        // Median-of-ratios anchors factors to the geometric-mean pseudo-reference;
        // a symmetric design yields factors whose product is ~1.
        let m = matrix(vec![vec![10, 90], vec![90, 10], vec![30, 30], vec![40, 40], vec![55, 55]]);
        let f = size_factors(&m).unwrap();
        let prod: f64 = f.iter().product();
        assert!((prod - 1.0).abs() < 1e-9, "{f:?}");
    }

    #[test]
    fn zero_containing_genes_are_excluded_from_reference() {
        // g0 has a zero → excluded; remaining genes say sample2 is 2× deeper.
        let m = matrix(vec![vec![0, 1000], vec![10, 20], vec![30, 60], vec![5, 10]]);
        let f = size_factors(&m).unwrap();
        assert!((f[1] / f[0] - 2.0).abs() < 1e-9, "{f:?}");
    }

    #[test]
    fn all_zero_rows_error() {
        let m = matrix(vec![vec![0, 5], vec![3, 0]]);
        assert_eq!(size_factors(&m).unwrap_err(), DeseqError::NoCommonlyExpressedGenes);
    }

    #[test]
    fn empty_matrix_errors() {
        let m = CountsMatrix::zeros(vec![], vec!["s".into()]);
        assert_eq!(size_factors(&m).unwrap_err(), DeseqError::EmptyMatrix);
    }

    #[test]
    fn single_sample_gets_unit_factor() {
        let m = matrix(vec![vec![10], vec![20], vec![5]]);
        let f = size_factors(&m).unwrap();
        assert_eq!(f.len(), 1);
        assert!((f[0] - 1.0).abs() < 1e-12, "geometric mean of one sample is itself");
    }

    #[test]
    fn normalization_divides_by_factor() {
        let m = matrix(vec![vec![10, 30], vec![20, 60], vec![7, 21]]);
        let n = normalize(&m).unwrap();
        for g in 0..3 {
            for (j, &f) in n.size_factors.iter().enumerate() {
                assert!((n.get(g, j) - m.get(g, j) as f64 / f).abs() < 1e-12);
            }
        }
        assert_eq!(n.gene_ids.len(), 3);
        assert_eq!(n.sample_ids.len(), 2);
    }

    #[test]
    fn factors_are_robust_to_one_outlier_gene() {
        // One wildly DE gene must not drag the median.
        let mut rows = vec![vec![50u64, 50]; 21];
        rows.push(vec![10, 100000]);
        let m = matrix(rows);
        let f = size_factors(&m).unwrap();
        assert!((f[0] - 1.0).abs() < 0.05 && (f[1] - 1.0).abs() < 0.05, "{f:?}");
    }
}
