//! Gene × sample counts matrix.

use serde::{Deserialize, Serialize};

/// A dense counts matrix: rows are genes, columns are samples.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CountsMatrix {
    gene_ids: Vec<String>,
    sample_ids: Vec<String>,
    /// Row-major: `data[gene * n_samples + sample]`.
    data: Vec<u64>,
}

impl CountsMatrix {
    /// An all-zero matrix with the given labels.
    pub fn zeros(gene_ids: Vec<String>, sample_ids: Vec<String>) -> CountsMatrix {
        let data = vec![0; gene_ids.len() * sample_ids.len()];
        CountsMatrix { gene_ids, sample_ids, data }
    }

    /// Build from rows (one `Vec` per gene). Panics if row lengths disagree with the
    /// sample count.
    pub fn from_rows(
        gene_ids: Vec<String>,
        sample_ids: Vec<String>,
        rows: Vec<Vec<u64>>,
    ) -> CountsMatrix {
        assert_eq!(rows.len(), gene_ids.len(), "one row per gene");
        let n = sample_ids.len();
        let mut data = Vec::with_capacity(gene_ids.len() * n);
        for row in &rows {
            assert_eq!(row.len(), n, "row length must equal sample count");
            data.extend_from_slice(row);
        }
        CountsMatrix { gene_ids, sample_ids, data }
    }

    /// Number of genes (rows).
    pub fn n_genes(&self) -> usize {
        self.gene_ids.len()
    }

    /// Number of samples (columns).
    pub fn n_samples(&self) -> usize {
        self.sample_ids.len()
    }

    /// Gene labels.
    pub fn gene_ids(&self) -> &[String] {
        &self.gene_ids
    }

    /// Sample labels.
    pub fn sample_ids(&self) -> &[String] {
        &self.sample_ids
    }

    /// The count for `(gene, sample)` by index.
    pub fn get(&self, gene: usize, sample: usize) -> u64 {
        self.data[gene * self.n_samples() + sample]
    }

    /// Set the count for `(gene, sample)` by index.
    pub fn set(&mut self, gene: usize, sample: usize, value: u64) {
        let n = self.n_samples();
        self.data[gene * n + sample] = value;
    }

    /// One gene's counts across samples.
    pub fn row(&self, gene: usize) -> &[u64] {
        let n = self.n_samples();
        &self.data[gene * n..(gene + 1) * n]
    }

    /// One sample's counts across genes (copied; columns are strided).
    pub fn column(&self, sample: usize) -> Vec<u64> {
        (0..self.n_genes()).map(|g| self.get(g, sample)).collect()
    }

    /// Total counts per sample (library sizes).
    pub fn library_sizes(&self) -> Vec<u64> {
        (0..self.n_samples()).map(|s| self.column(s).iter().sum()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> CountsMatrix {
        CountsMatrix::from_rows(
            vec!["g1".into(), "g2".into(), "g3".into()],
            vec!["s1".into(), "s2".into()],
            vec![vec![10, 20], vec![0, 5], vec![7, 7]],
        )
    }

    #[test]
    fn shape_and_access() {
        let m = m();
        assert_eq!(m.n_genes(), 3);
        assert_eq!(m.n_samples(), 2);
        assert_eq!(m.get(0, 1), 20);
        assert_eq!(m.row(2), &[7, 7]);
        assert_eq!(m.column(0), vec![10, 0, 7]);
    }

    #[test]
    fn set_updates_in_place() {
        let mut m = m();
        m.set(1, 0, 99);
        assert_eq!(m.get(1, 0), 99);
    }

    #[test]
    fn library_sizes_sum_columns() {
        assert_eq!(m().library_sizes(), vec![17, 32]);
    }

    #[test]
    fn zeros_builds_correct_shape() {
        let z = CountsMatrix::zeros(vec!["a".into()], vec!["x".into(), "y".into(), "z".into()]);
        assert_eq!(z.n_genes(), 1);
        assert_eq!(z.n_samples(), 3);
        assert_eq!(z.row(0), &[0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "row length")]
    fn ragged_rows_panic() {
        CountsMatrix::from_rows(
            vec!["g".into()],
            vec!["s1".into(), "s2".into()],
            vec![vec![1]],
        );
    }
}
