//! DESeq2-style count normalization — pipeline step 4.
//!
//! The Transcriptomics Atlas pipeline ends by normalizing STAR's per-gene counts with
//! DESeq2. The part of DESeq2 the pipeline uses is *median-of-ratios* normalization
//! (Love et al. 2014, following Anders & Huber 2010): per-sample size factors are the
//! median, over genes, of each sample's counts divided by the gene's geometric mean
//! across samples; normalized counts are raw counts divided by the sample's factor.
//!
//! The full differential-expression machinery (dispersion shrinkage, Wald tests) is
//! out of pipeline scope — the Atlas only stores normalized counts.

pub mod matrix;
pub mod normalize;

pub use matrix::CountsMatrix;
pub use normalize::{normalize, size_factors, DeseqError, NormalizedMatrix};
