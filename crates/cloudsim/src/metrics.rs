//! Time-series telemetry for simulations.
//!
//! A [`TimeSeries`] records `(time, value)` samples — fleet size, queue depth, busy
//! workers — and computes the summary statistics campaign reports quote:
//! time-weighted mean (the right mean for step functions sampled at irregular
//! ticks), peak, and the integral (e.g. instance-seconds).

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Tallies of injected faults and retry activity over a chaos campaign.
///
/// Filled in by [`crate::faults::FaultInjector`] and quoted by campaign reports so
/// a chaos run documents exactly how much adversity it survived.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultCounters {
    /// Transient S3 GET failures injected.
    pub s3_get_faults: u64,
    /// Transient S3 PUT failures injected.
    pub s3_put_faults: u64,
    /// Transient SQS receive failures injected.
    pub sqs_receive_faults: u64,
    /// Transient SQS delete failures injected.
    pub sqs_delete_faults: u64,
    /// Transient SQS visibility-change failures injected.
    pub sqs_extend_faults: u64,
    /// Duplicate deliveries injected (message left visible after receive).
    pub duplicate_deliveries: u64,
    /// Worker crashes injected mid-pipeline.
    pub worker_crashes: u64,
    /// Failed attempts that consumed a retry.
    pub retry_attempts: u64,
    /// Operations that failed every attempt of their retry policy.
    pub retries_exhausted: u64,
    /// Total simulated seconds slept in retry backoff.
    pub retry_backoff_secs: f64,
}

impl FaultCounters {
    /// Record one injected fault of kind `op`.
    pub fn count(&mut self, op: crate::faults::FaultOp) {
        use crate::faults::FaultOp;
        match op {
            FaultOp::S3Get => self.s3_get_faults += 1,
            FaultOp::S3Put => self.s3_put_faults += 1,
            FaultOp::SqsReceive => self.sqs_receive_faults += 1,
            FaultOp::SqsDelete => self.sqs_delete_faults += 1,
            FaultOp::SqsExtend => self.sqs_extend_faults += 1,
            FaultOp::DuplicateDelivery => self.duplicate_deliveries += 1,
            FaultOp::WorkerCrash => self.worker_crashes += 1,
        }
    }

    /// Total injected faults across all operation kinds.
    pub fn total_faults(&self) -> u64 {
        self.s3_get_faults
            + self.s3_put_faults
            + self.sqs_receive_faults
            + self.sqs_delete_faults
            + self.sqs_extend_faults
            + self.duplicate_deliveries
            + self.worker_crashes
    }
}

/// An append-only series of timestamped gauge samples.
///
/// Samples must be appended in non-decreasing time order; the value is treated as a
/// step function (it holds from its sample time until the next sample).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    samples: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> TimeSeries {
        TimeSeries::default()
    }

    /// Append a sample at `at`. Panics on out-of-order timestamps (a simulation bug).
    pub fn record(&mut self, at: SimTime, value: f64) {
        let t = at.as_secs();
        if let Some(&(prev, _)) = self.samples.last() {
            assert!(t >= prev, "samples must be time-ordered: {t} < {prev}");
        }
        self.samples.push((t, value));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The raw samples.
    pub fn samples(&self) -> &[(f64, f64)] {
        &self.samples
    }

    /// Largest sampled value (0 for an empty series).
    pub fn peak(&self) -> f64 {
        self.samples.iter().map(|&(_, v)| v).fold(0.0, f64::max)
    }

    /// Integral of the step function over `[first_sample, until]` — e.g. a fleet-size
    /// series integrates to instance-seconds.
    pub fn integral_until(&self, until: SimTime) -> f64 {
        let end = until.as_secs();
        let mut total = 0.0;
        for w in self.samples.windows(2) {
            let (t0, v0) = w[0];
            let t1 = w[1].0.min(end);
            if t1 > t0 {
                total += v0 * (t1 - t0);
            }
        }
        if let Some(&(t_last, v_last)) = self.samples.last() {
            if end > t_last {
                total += v_last * (end - t_last);
            }
        }
        total
    }

    /// Time-weighted mean over `[first_sample, until]` (0 for empty/zero-length
    /// spans).
    pub fn time_weighted_mean(&self, until: SimTime) -> f64 {
        let Some(&(t0, _)) = self.samples.first() else { return 0.0 };
        let span = until.as_secs() - t0;
        if span <= 0.0 {
            return 0.0;
        }
        self.integral_until(until) / span
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn step_function_integral() {
        let mut s = TimeSeries::new();
        s.record(t(0.0), 2.0); // 2 for 10s = 20
        s.record(t(10.0), 4.0); // 4 for 5s = 20
        s.record(t(15.0), 0.0); // 0 for 5s = 0
        assert!((s.integral_until(t(20.0)) - 40.0).abs() < 1e-12);
        assert!((s.time_weighted_mean(t(20.0)) - 2.0).abs() < 1e-12);
        assert_eq!(s.peak(), 4.0);
    }

    #[test]
    fn integral_clamps_to_until() {
        let mut s = TimeSeries::new();
        s.record(t(0.0), 3.0);
        s.record(t(10.0), 5.0);
        // Until inside the first segment.
        assert!((s.integral_until(t(4.0)) - 12.0).abs() < 1e-12);
    }

    #[test]
    fn tail_extends_to_until() {
        let mut s = TimeSeries::new();
        s.record(t(5.0), 1.0);
        assert!((s.integral_until(t(15.0)) - 10.0).abs() < 1e-12);
        assert!((s.time_weighted_mean(t(15.0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_series_is_zero() {
        let s = TimeSeries::new();
        assert_eq!(s.integral_until(t(100.0)), 0.0);
        assert_eq!(s.time_weighted_mean(t(100.0)), 0.0);
        assert_eq!(s.peak(), 0.0);
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_samples_panic() {
        let mut s = TimeSeries::new();
        s.record(t(10.0), 1.0);
        s.record(t(5.0), 2.0);
    }

    #[test]
    fn equal_timestamps_are_allowed() {
        // A step can change twice at one tick (scale-out then sample).
        let mut s = TimeSeries::new();
        s.record(t(1.0), 1.0);
        s.record(t(1.0), 3.0);
        s.record(t(2.0), 0.0);
        assert!((s.integral_until(t(2.0)) - 3.0).abs() < 1e-12);
    }
}
