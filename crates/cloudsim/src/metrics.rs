//! Campaign metrics: fault tallies.
//!
//! The gauge time-series type (fleet size, queue depth, busy workers over sim
//! time) lives in `telemetry::series::TimeSeries` — the one metrics surface;
//! callers depend on `telemetry` directly and pass `SimTime::as_secs()`.

use serde::{Deserialize, Serialize};

/// Tallies of injected faults and retry activity over a chaos campaign.
///
/// Filled in by [`crate::faults::FaultInjector`] and quoted by campaign reports so
/// a chaos run documents exactly how much adversity it survived.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultCounters {
    /// Transient S3 GET failures injected.
    pub s3_get_faults: u64,
    /// Transient S3 PUT failures injected.
    pub s3_put_faults: u64,
    /// Transient SQS receive failures injected.
    pub sqs_receive_faults: u64,
    /// Transient SQS delete failures injected.
    pub sqs_delete_faults: u64,
    /// Transient SQS visibility-change failures injected.
    pub sqs_extend_faults: u64,
    /// Duplicate deliveries injected (message left visible after receive).
    pub duplicate_deliveries: u64,
    /// Worker crashes injected mid-pipeline.
    pub worker_crashes: u64,
    /// Failed attempts that consumed a retry.
    pub retry_attempts: u64,
    /// Operations that failed every attempt of their retry policy.
    pub retries_exhausted: u64,
    /// Total simulated seconds slept in retry backoff.
    pub retry_backoff_secs: f64,
}

impl FaultCounters {
    /// Record one injected fault of kind `op`.
    pub fn count(&mut self, op: crate::faults::FaultOp) {
        use crate::faults::FaultOp;
        match op {
            FaultOp::S3Get => self.s3_get_faults += 1,
            FaultOp::S3Put => self.s3_put_faults += 1,
            FaultOp::SqsReceive => self.sqs_receive_faults += 1,
            FaultOp::SqsDelete => self.sqs_delete_faults += 1,
            FaultOp::SqsExtend => self.sqs_extend_faults += 1,
            FaultOp::DuplicateDelivery => self.duplicate_deliveries += 1,
            FaultOp::WorkerCrash => self.worker_crashes += 1,
        }
    }

    /// Total injected faults across all operation kinds.
    pub fn total_faults(&self) -> u64 {
        self.s3_get_faults
            + self.s3_put_faults
            + self.sqs_receive_faults
            + self.sqs_delete_faults
            + self.sqs_extend_faults
            + self.duplicate_deliveries
            + self.worker_crashes
    }
}

#[cfg(test)]
mod tests {
    use crate::time::SimTime;

    #[test]
    fn series_takes_sim_seconds() {
        // The series lives in `telemetry`; callers pass `SimTime::as_secs()`.
        let mut s = telemetry::TimeSeries::new();
        s.record(SimTime::from_secs(0.0).as_secs(), 2.0);
        s.record(SimTime::from_secs(10.0).as_secs(), 4.0);
        assert!((s.integral_until(SimTime::from_secs(15.0).as_secs()) - 40.0).abs() < 1e-12);
        assert_eq!(s.peak(), 4.0);
        assert_eq!(s.min(), 2.0);
    }
}
