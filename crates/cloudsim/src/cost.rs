//! Cloud cost accounting.
//!
//! "Minimization of cloud costs" is one of the paper's three stated goals; every
//! experiment that claims savings (right-sizing, early stopping, spot) settles in
//! USD here. Costs accrue per instance: billable seconds × (on-demand or spot)
//! hourly price.

use crate::instance::Instance;
use crate::spot::SpotMarket;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Aggregated cost report.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CostReport {
    /// USD per instance type.
    pub by_type: BTreeMap<String, f64>,
    /// Total instance-hours per type.
    pub hours_by_type: BTreeMap<String, f64>,
    /// Total USD.
    pub total_usd: f64,
    /// Total instance-hours.
    pub total_hours: f64,
    /// Instance-hours spent on work that was thrown away (crashed jobs, duplicate
    /// completions, results whose upload failed). Subset of `total_hours`.
    pub wasted_hours: f64,
    /// USD attributed to that wasted work. Subset of `total_usd`.
    pub wasted_usd: f64,
}

impl CostReport {
    /// Fraction of total spend that bought discarded work (0 when nothing accrued).
    pub fn wasted_fraction(&self) -> f64 {
        if self.total_usd > 0.0 {
            self.wasted_usd / self.total_usd
        } else {
            0.0
        }
    }
}

/// The tracker: finalizes instances into the report.
#[derive(Clone, Debug, Default)]
pub struct CostTracker {
    spot: Option<SpotMarket>,
    report: CostReport,
}

impl CostTracker {
    /// A tracker with on-demand pricing only.
    pub fn on_demand() -> CostTracker {
        CostTracker::default()
    }

    /// A tracker that prices spot instances through `market`.
    pub fn with_spot(market: SpotMarket) -> CostTracker {
        CostTracker { spot: Some(market), report: CostReport::default() }
    }

    /// The effective hourly USD rate this tracker bills `itype` at: the spot
    /// market price when `spot` and a market is configured, the on-demand price
    /// otherwise. The single pricing point shared by [`Self::charge`],
    /// [`Self::attribute_waste`], and the per-accession attribution ledger —
    /// every dollar in a campaign report is this rate times some seconds.
    pub fn hourly_rate(&self, itype: &crate::instance::InstanceType, spot: bool) -> f64 {
        if spot {
            match &self.spot {
                Some(m) => m.hourly_price(itype.on_demand_hourly_usd),
                None => itype.on_demand_hourly_usd,
            }
        } else {
            itype.on_demand_hourly_usd
        }
    }

    /// Charge one instance's lifetime as of `now` (terminated instances are charged
    /// to their termination time).
    pub fn charge(&mut self, instance: &Instance, now: SimTime) {
        let secs = instance.billable_secs(now);
        let hourly = self.hourly_rate(instance.itype, instance.spot);
        let usd = hourly * secs / 3600.0;
        let hours = secs / 3600.0;
        *self.report.by_type.entry(instance.itype.name.to_string()).or_default() += usd;
        *self.report.hours_by_type.entry(instance.itype.name.to_string()).or_default() += hours;
        self.report.total_usd += usd;
        self.report.total_hours += hours;
    }

    /// Attribute `secs` of one instance-type's time as wasted work (redone after a
    /// crash, duplicated by a redelivery, or lost to a failed upload). This does not
    /// add to the totals — the instance time is already charged by [`Self::charge`];
    /// it labels a slice of it.
    pub fn attribute_waste(&mut self, itype: &crate::instance::InstanceType, spot: bool, secs: f64) {
        let hourly = self.hourly_rate(itype, spot);
        self.report.wasted_hours += secs / 3600.0;
        self.report.wasted_usd += hourly * secs / 3600.0;
    }

    /// The report so far.
    pub fn report(&self) -> &CostReport {
        &self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{InstanceId, InstanceType};

    fn instance(spot: bool, hours: f64) -> Instance {
        let t = InstanceType::by_name("r6a.4xlarge").unwrap();
        let mut i = Instance::launch(InstanceId(1), t, spot, SimTime::ZERO);
        i.terminate(SimTime::from_secs(hours * 3600.0));
        i
    }

    #[test]
    fn on_demand_charge_is_hourly_times_hours() {
        let mut c = CostTracker::on_demand();
        c.charge(&instance(false, 2.0), SimTime::from_secs(1e6));
        let r = c.report();
        assert!((r.total_usd - 2.0 * 1.0896).abs() < 1e-9);
        assert!((r.total_hours - 2.0).abs() < 1e-12);
        assert!((r.by_type["r6a.4xlarge"] - r.total_usd).abs() < 1e-12);
    }

    #[test]
    fn spot_instances_get_the_discount() {
        let market = SpotMarket { price_factor: 0.3, ..SpotMarket::default() };
        let mut c = CostTracker::with_spot(market);
        c.charge(&instance(true, 1.0), SimTime::from_secs(1e6));
        assert!((c.report().total_usd - 0.3 * 1.0896).abs() < 1e-9);
    }

    #[test]
    fn spot_without_market_falls_back_to_on_demand() {
        let mut c = CostTracker::on_demand();
        c.charge(&instance(true, 1.0), SimTime::from_secs(1e6));
        assert!((c.report().total_usd - 1.0896).abs() < 1e-9);
    }

    #[test]
    fn running_instances_charge_to_now() {
        let t = InstanceType::by_name("m6a.xlarge").unwrap();
        let i = Instance::launch(InstanceId(2), t, false, SimTime::ZERO);
        let mut c = CostTracker::on_demand();
        c.charge(&i, SimTime::from_secs(1800.0));
        assert!((c.report().total_usd - t.on_demand_hourly_usd / 2.0).abs() < 1e-9);
    }

    #[test]
    fn waste_attribution_labels_without_double_charging() {
        let market = SpotMarket { price_factor: 0.5, ..SpotMarket::default() };
        let mut c = CostTracker::with_spot(market);
        c.charge(&instance(true, 2.0), SimTime::from_secs(1e6));
        let t = InstanceType::by_name("r6a.4xlarge").unwrap();
        c.attribute_waste(t, true, 1800.0);
        let r = c.report();
        assert!((r.wasted_hours - 0.5).abs() < 1e-12);
        assert!((r.wasted_usd - 0.5 * 1.0896 * 0.5).abs() < 1e-9);
        assert!((r.total_usd - 2.0 * 0.5 * 1.0896).abs() < 1e-9, "totals unchanged by waste");
        assert!((r.wasted_fraction() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn hourly_rate_is_the_single_pricing_point() {
        let t = InstanceType::by_name("r6a.4xlarge").unwrap();
        let od = CostTracker::on_demand();
        assert_eq!(od.hourly_rate(t, false), t.on_demand_hourly_usd);
        assert_eq!(od.hourly_rate(t, true), t.on_demand_hourly_usd, "no market: on-demand");
        let market = SpotMarket { price_factor: 0.3, ..SpotMarket::default() };
        let sp = CostTracker::with_spot(market);
        assert!((sp.hourly_rate(t, true) - 0.3 * t.on_demand_hourly_usd).abs() < 1e-12);
        assert_eq!(sp.hourly_rate(t, false), t.on_demand_hourly_usd);
    }

    #[test]
    fn multiple_types_accumulate_separately() {
        let mut c = CostTracker::on_demand();
        c.charge(&instance(false, 1.0), SimTime::ZERO + crate::SimDuration::from_hours(1.0));
        let t2 = InstanceType::by_name("m6a.2xlarge").unwrap();
        let mut i2 = Instance::launch(InstanceId(3), t2, false, SimTime::ZERO);
        i2.terminate(SimTime::from_secs(3600.0));
        c.charge(&i2, SimTime::from_secs(1e6));
        let r = c.report();
        assert_eq!(r.by_type.len(), 2);
        assert!((r.total_usd - (1.0896 + 0.4147)).abs() < 1e-9);
        assert!((r.total_hours - 2.0).abs() < 1e-12);
    }
}
