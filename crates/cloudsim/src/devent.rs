//! The discrete-event simulation kernel.
//!
//! [`Kernel`] is the scheduling heart fleet-scale campaigns run on: a binary heap
//! of `(time, sequence)`-keyed timers with deterministic tie-breaking (earlier
//! time first; equal times pop in scheduling order), O(1) cancellation via
//! tombstones, dispatch statistics, and an optional operation trace that makes a
//! whole simulation *replayable* — feeding a recorded trace back through a fresh
//! kernel must reproduce the exact pop sequence, byte for byte.
//!
//! Relationship to [`crate::event::EventQueue`]: the `EventQueue` is the
//! original minimal heap the (since-deleted) per-tick orchestration loop was
//! built on, kept as a freestanding utility. The kernel adds the pieces a real
//! discrete-event core needs — cancellable timers, monotone-clock enforcement,
//! stats, trace/replay — while preserving the identical `(time, sequence)`
//! ordering contract the campaign digests were frozen against.
//!
//! Determinism contract:
//!
//! * `pop` order is a pure function of the sequence of `schedule`/`cancel` calls —
//!   no hashing, no pointer identity, no wall clock.
//! * events at the same timestamp pop in the order they were scheduled
//!   (sequence numbers are assigned monotonically and never reused);
//! * the clock never moves backwards: scheduling into the past panics, and each
//!   pop advances `now` to the popped event's timestamp.

use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// Handle to a scheduled event, usable to [`Kernel::cancel`] it before it fires.
///
/// Sequence numbers are unique for the lifetime of a kernel, so a stale handle
/// (already fired or already cancelled) is harmless: cancelling it is a no-op
/// that reports `false`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimerId(u64);

impl TimerId {
    /// The raw sequence number (stable identifier in traces).
    pub fn seq(&self) -> u64 {
        self.0
    }
}

/// Dispatch statistics, for campaign reports and kernel benchmarks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Events ever scheduled.
    pub scheduled: u64,
    /// Events popped and handed to the simulation.
    pub dispatched: u64,
    /// Events cancelled before firing.
    pub cancelled: u64,
    /// High-water mark of pending (live) events.
    pub peak_pending: usize,
}

/// One recorded kernel operation (see [`Kernel::enable_trace`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceOp {
    /// An event was scheduled at `at` with sequence `seq`.
    Schedule {
        /// Bit pattern of the timestamp (exact, no rounding).
        at_bits: u64,
        /// Sequence number assigned.
        seq: u64,
    },
    /// The event with sequence `seq` was cancelled while pending.
    Cancel {
        /// Sequence number cancelled.
        seq: u64,
    },
    /// The event with sequence `seq` fired at `at`.
    Pop {
        /// Bit pattern of the dispatch timestamp.
        at_bits: u64,
        /// Sequence number dispatched.
        seq: u64,
    },
}

struct Entry<E> {
    key: Reverse<(SimTime, u64)>,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// The discrete-event kernel: a deterministic, cancellable timer wheel.
pub struct Kernel<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Sequence numbers currently live: scheduled, not fired, not cancelled.
    /// Membership answers `cancel` in O(1); the sets are lookup-only (never
    /// iterated), so hashing cannot perturb simulation order.
    live: HashSet<u64>,
    /// Cancelled-but-still-heaped sequence numbers, discarded lazily at pop.
    tombstones: HashSet<u64>,
    seq: u64,
    now: SimTime,
    stats: KernelStats,
    trace: Option<Vec<TraceOp>>,
}

impl<E> Default for Kernel<E> {
    fn default() -> Self {
        Kernel {
            heap: BinaryHeap::new(),
            live: HashSet::new(),
            tombstones: HashSet::new(),
            seq: 0,
            now: SimTime::ZERO,
            stats: KernelStats::default(),
            trace: None,
        }
    }
}

impl<E> Kernel<E> {
    /// An empty kernel with the clock at zero.
    pub fn new() -> Kernel<E> {
        Kernel::default()
    }

    /// Start recording every schedule/cancel/pop as a [`TraceOp`].
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Vec::new());
        }
    }

    /// The recorded operation trace (empty unless [`Kernel::enable_trace`] ran
    /// before the operations of interest).
    pub fn trace(&self) -> &[TraceOp] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Serialize the trace to bytes — a canonical, comparison-friendly encoding
    /// for the replay property tests (op tag, then the op's fields, little-endian).
    pub fn trace_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.trace().len() * 17);
        for op in self.trace() {
            match op {
                TraceOp::Schedule { at_bits, seq } => {
                    out.push(1);
                    out.extend_from_slice(&at_bits.to_le_bytes());
                    out.extend_from_slice(&seq.to_le_bytes());
                }
                TraceOp::Cancel { seq } => {
                    out.push(2);
                    out.extend_from_slice(&seq.to_le_bytes());
                }
                TraceOp::Pop { at_bits, seq } => {
                    out.push(3);
                    out.extend_from_slice(&at_bits.to_le_bytes());
                    out.extend_from_slice(&seq.to_le_bytes());
                }
            }
        }
        out
    }

    /// Current simulation time (the timestamp of the last dispatched event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Dispatch statistics so far.
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// Schedule `payload` at absolute time `at`, returning a cancellable handle.
    ///
    /// Panics when scheduling in the past — a simulation bug that must not be
    /// silently reordered.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> TimerId {
        assert!(at >= self.now, "scheduling into the past: {at:?} < {:?}", self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { key: Reverse((at, seq)), payload });
        self.live.insert(seq);
        self.stats.scheduled += 1;
        let pending = self.len();
        if pending > self.stats.peak_pending {
            self.stats.peak_pending = pending;
        }
        if let Some(t) = &mut self.trace {
            t.push(TraceOp::Schedule { at_bits: at.as_secs().to_bits(), seq });
        }
        TimerId(seq)
    }

    /// Schedule `payload` `delay` after now.
    pub fn schedule_in(&mut self, delay: SimDuration, payload: E) -> TimerId {
        self.schedule(self.now + delay, payload)
    }

    /// Cancel a pending event. Returns `true` when the event was live (it will
    /// never fire); `false` for stale handles (already fired or cancelled).
    pub fn cancel(&mut self, id: TimerId) -> bool {
        if !self.live.remove(&id.0) {
            return false;
        }
        self.tombstones.insert(id.0);
        self.stats.cancelled += 1;
        if let Some(t) = &mut self.trace {
            t.push(TraceOp::Cancel { seq: id.0 });
        }
        true
    }

    /// Pop the earliest live event, advancing the clock to its timestamp.
    /// Cancelled entries are discarded silently.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            let Reverse((at, seq)) = entry.key;
            if self.tombstones.remove(&seq) {
                continue;
            }
            self.live.remove(&seq);
            debug_assert!(at >= self.now, "kernel clock must be monotone");
            self.now = at;
            self.stats.dispatched += 1;
            if let Some(t) = &mut self.trace {
                t.push(TraceOp::Pop { at_bits: at.as_secs().to_bits(), seq });
            }
            return Some((at, entry.payload));
        }
        None
    }

    /// Number of pending (live, uncancelled) events.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// True when no live events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Timestamp of the next live event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(e) = self.heap.peek() {
            let Reverse((at, seq)) = e.key;
            if self.tombstones.contains(&seq) {
                self.heap.pop();
                self.tombstones.remove(&seq);
                continue;
            }
            return Some(at);
        }
        None
    }
}

impl<E> std::fmt::Debug for Kernel<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("now", &self.now)
            .field("pending", &self.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_with_fifo_ties() {
        let mut k = Kernel::new();
        k.schedule(SimTime::from_secs(3.0), "late");
        k.schedule(SimTime::from_secs(1.0), "a");
        k.schedule(SimTime::from_secs(1.0), "b");
        k.schedule(SimTime::from_secs(2.0), "mid");
        let order: Vec<&str> = std::iter::from_fn(|| k.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, ["a", "b", "mid", "late"]);
        assert_eq!(k.now(), SimTime::from_secs(3.0));
    }

    #[test]
    fn cancelled_events_never_fire() {
        let mut k = Kernel::new();
        let a = k.schedule(SimTime::from_secs(1.0), "a");
        let b = k.schedule(SimTime::from_secs(2.0), "b");
        k.schedule(SimTime::from_secs(3.0), "c");
        assert!(k.cancel(b));
        assert!(!k.cancel(b), "double cancel is a stale no-op");
        assert_eq!(k.len(), 2);
        let order: Vec<&str> = std::iter::from_fn(|| k.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, ["a", "c"]);
        assert!(!k.cancel(a), "fired handles are stale");
        assert_eq!(k.stats().cancelled, 1);
        assert_eq!(k.stats().dispatched, 2);
        assert_eq!(k.stats().scheduled, 3);
    }

    #[test]
    fn peek_skips_tombstones() {
        let mut k = Kernel::new();
        let a = k.schedule(SimTime::from_secs(1.0), ());
        k.schedule(SimTime::from_secs(2.0), ());
        k.cancel(a);
        assert_eq!(k.peek_time(), Some(SimTime::from_secs(2.0)));
        assert_eq!(k.len(), 1);
    }

    #[test]
    fn schedule_in_is_relative_and_clock_monotone() {
        let mut k = Kernel::new();
        k.schedule(SimTime::from_secs(10.0), 1);
        k.pop();
        k.schedule_in(SimDuration::from_secs(5.0), 2);
        let (t, v) = k.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(15.0));
        assert_eq!(v, 2);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_the_past_panics() {
        let mut k = Kernel::new();
        k.schedule(SimTime::from_secs(10.0), ());
        k.pop();
        k.schedule(SimTime::from_secs(5.0), ());
    }

    #[test]
    fn trace_records_schedule_cancel_pop() {
        let mut k = Kernel::new();
        k.enable_trace();
        let a = k.schedule(SimTime::from_secs(1.0), ());
        let b = k.schedule(SimTime::from_secs(2.0), ());
        k.cancel(b);
        k.pop();
        assert_eq!(
            k.trace(),
            &[
                TraceOp::Schedule { at_bits: 1.0f64.to_bits(), seq: a.seq() },
                TraceOp::Schedule { at_bits: 2.0f64.to_bits(), seq: b.seq() },
                TraceOp::Cancel { seq: b.seq() },
                TraceOp::Pop { at_bits: 1.0f64.to_bits(), seq: a.seq() },
            ]
        );
        assert_eq!(k.trace_bytes().len(), 17 + 17 + 9 + 17);
    }

    #[test]
    fn peak_pending_tracks_high_water_mark() {
        let mut k = Kernel::new();
        for i in 0..5 {
            k.schedule(SimTime::from_secs(i as f64), i);
        }
        for _ in 0..5 {
            k.pop();
        }
        k.schedule(SimTime::from_secs(10.0), 99);
        assert_eq!(k.stats().peak_pending, 5);
    }
}
