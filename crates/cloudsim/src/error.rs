//! Error type for the cloud simulation layer.

use std::fmt;

/// Errors from simulated cloud operations.
#[derive(Debug)]
pub enum CloudError {
    /// Object key not present in the store.
    NoSuchKey(String),
    /// Unknown instance type name.
    UnknownInstanceType(String),
    /// Operation on an instance in the wrong state.
    InvalidState(String),
    /// Inconsistent configuration.
    InvalidParams(String),
    /// SQS receipt handle is stale (message redelivered or deleted).
    StaleReceipt(String),
    /// Injected transient service failure (retryable).
    ServiceUnavailable(String),
    /// A retried operation failed on every attempt of its policy.
    RetriesExhausted(String),
}

impl fmt::Display for CloudError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CloudError::NoSuchKey(k) => write!(f, "no such key: {k}"),
            CloudError::UnknownInstanceType(t) => write!(f, "unknown instance type: {t}"),
            CloudError::InvalidState(m) => write!(f, "invalid state: {m}"),
            CloudError::InvalidParams(m) => write!(f, "invalid parameters: {m}"),
            CloudError::StaleReceipt(m) => write!(f, "stale receipt: {m}"),
            CloudError::ServiceUnavailable(m) => write!(f, "service unavailable: {m}"),
            CloudError::RetriesExhausted(m) => write!(f, "retries exhausted: {m}"),
        }
    }
}

impl std::error::Error for CloudError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(CloudError::NoSuchKey("s3://x/y".into()).to_string().contains("s3://x/y"));
        assert!(CloudError::UnknownInstanceType("z9.mega".into()).to_string().contains("z9.mega"));
    }
}
