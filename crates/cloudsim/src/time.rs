//! Simulated time.
//!
//! `SimTime` is seconds since simulation start as an `f64` wrapped with total
//! ordering (no NaNs by construction: all arithmetic goes through checked
//! constructors that assert finiteness).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulation clock (seconds since start).
#[derive(Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize, Default)]
pub struct SimTime(f64);

/// A span of simulated time in seconds (non-negative).
#[derive(Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize, Default)]
pub struct SimDuration(f64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Construct from seconds. Panics on NaN/∞ or negative values.
    pub fn from_secs(secs: f64) -> SimTime {
        assert!(secs.is_finite() && secs >= 0.0, "invalid SimTime: {secs}");
        SimTime(secs)
    }

    /// Seconds since simulation start.
    pub fn as_secs(&self) -> f64 {
        self.0
    }

    /// Hours since simulation start.
    pub fn as_hours(&self) -> f64 {
        self.0 / 3600.0
    }

    /// Duration since an earlier instant. Panics if `earlier` is later.
    pub fn since(&self, earlier: SimTime) -> SimDuration {
        SimDuration::from_secs(self.0 - earlier.0)
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0.0);

    /// Construct from seconds. Panics on NaN/∞ or negative values.
    pub fn from_secs(secs: f64) -> SimDuration {
        assert!(secs.is_finite() && secs >= 0.0, "invalid SimDuration: {secs}");
        SimDuration(secs)
    }

    /// Construct from hours.
    pub fn from_hours(hours: f64) -> SimDuration {
        SimDuration::from_secs(hours * 3600.0)
    }

    /// Seconds.
    pub fn as_secs(&self) -> f64 {
        self.0
    }

    /// Hours.
    pub fn as_hours(&self) -> f64 {
        self.0 / 3600.0
    }
}

// SimTime has no NaN by construction, so Eq/Ord are sound.
impl Eq for SimTime {}
#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("SimTime is never NaN")
    }
}
impl Eq for SimDuration {}
#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimDuration {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("SimDuration is never NaN")
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime::from_secs(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration::from_secs(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}s", self.0)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 3600.0 {
            write!(f, "{:.2}h", self.as_hours())
        } else {
            write!(f, "{:.1}s", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_works() {
        let t = SimTime::from_secs(10.0) + SimDuration::from_secs(5.0);
        assert_eq!(t.as_secs(), 15.0);
        assert_eq!((t - SimTime::from_secs(5.0)).as_secs(), 10.0);
        let mut d = SimDuration::from_secs(1.0);
        d += SimDuration::from_hours(1.0);
        assert_eq!(d.as_secs(), 3601.0);
        assert!((d.as_hours() - 3601.0 / 3600.0).abs() < 1e-12);
    }

    #[test]
    fn series_takes_sim_seconds() {
        // The series lives in `telemetry`; callers pass `SimTime::as_secs()`.
        let mut s = telemetry::TimeSeries::new();
        s.record(SimTime::from_secs(0.0).as_secs(), 2.0);
        s.record(SimTime::from_secs(10.0).as_secs(), 4.0);
        assert!((s.integral_until(SimTime::from_secs(15.0).as_secs()) - 40.0).abs() < 1e-12);
        assert_eq!(s.peak(), 4.0);
        assert_eq!(s.min(), 2.0);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![SimTime::from_secs(3.0), SimTime::ZERO, SimTime::from_secs(1.5)];
        v.sort();
        assert_eq!(v[0], SimTime::ZERO);
        assert_eq!(v[2].as_secs(), 3.0);
    }

    #[test]
    #[should_panic(expected = "invalid SimTime")]
    fn rejects_negative_time() {
        SimTime::from_secs(-1.0);
    }

    #[test]
    #[should_panic(expected = "invalid SimDuration")]
    fn rejects_nan_duration() {
        SimDuration::from_secs(f64::NAN);
    }

    #[test]
    #[should_panic]
    fn since_panics_when_earlier_is_later() {
        let _ = SimTime::from_secs(1.0).since(SimTime::from_secs(2.0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_secs(30.0).to_string(), "30.0s");
        assert_eq!(SimDuration::from_hours(2.0).to_string(), "2.00h");
        assert_eq!(SimTime::from_secs(12.34).to_string(), "12.3s");
    }
}
