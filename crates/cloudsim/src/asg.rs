//! AutoScalingGroup: queue-depth-driven fleet sizing.
//!
//! The paper scales its EC2 fleet with an AutoScalingGroup fed from the SQS backlog
//! (the standard "backlog per instance" pattern): desired capacity =
//! `ceil(pending_messages / target_backlog_per_instance)`, clamped to `[min, max]`.
//! The group only *decides* sizes; the orchestrator launches/terminates instances and
//! charges their cost.
//!
//! Fleet bookkeeping is kernel-grade: instance lookup is O(1) (ids are dense serials
//! into the launch vector), the active count is a maintained counter, and the live
//! set is an ordered `BTreeSet` keyed `(newest-first launch time, id)` so a scale-in
//! decision reads the victims straight off the set — no scan, no sort, and no hash
//! iteration anywhere near scheduling order.

use crate::instance::{Instance, InstanceId, InstanceState, InstanceType};
use crate::time::SimTime;
use crate::CloudError;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BTreeSet;
use std::sync::Arc;
use telemetry::{JsonValue, Recorder};

/// Scaling policy parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ScalingPolicy {
    /// Minimum instances.
    pub min_size: u32,
    /// Maximum instances.
    pub max_size: u32,
    /// Target queue backlog per instance (messages).
    pub target_backlog_per_instance: u32,
}

impl Default for ScalingPolicy {
    fn default() -> Self {
        ScalingPolicy { min_size: 0, max_size: 16, target_backlog_per_instance: 4 }
    }
}

impl ScalingPolicy {
    /// Validate the policy.
    pub fn validate(&self) -> Result<(), CloudError> {
        if self.min_size > self.max_size {
            return Err(CloudError::InvalidParams("min_size > max_size".into()));
        }
        if self.target_backlog_per_instance == 0 {
            return Err(CloudError::InvalidParams("target backlog must be positive".into()));
        }
        Ok(())
    }

    /// Desired capacity for a backlog of `pending` messages.
    pub fn desired_capacity(&self, pending: usize) -> u32 {
        let need = (pending as u32).div_ceil(self.target_backlog_per_instance);
        need.clamp(self.min_size, self.max_size)
    }
}

/// The group: policy + fleet bookkeeping.
#[derive(Debug)]
pub struct AutoScalingGroup {
    policy: ScalingPolicy,
    itype: &'static InstanceType,
    spot: bool,
    instances: Vec<Instance>,
    next_id: u64,
    /// Non-terminated instances ordered newest-first (launch-time ties break on
    /// id, matching the stable sort the scan-based implementation used).
    live: BTreeSet<(Reverse<SimTime>, InstanceId)>,
    /// Telemetry sink, when attached. Scaling decisions never depend on it.
    recorder: Option<Arc<Recorder>>,
}

/// A scaling decision: how many instances to launch, and which to terminate.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct ScaleDecision {
    /// Number of new instances to launch.
    pub launch: u32,
    /// Ids to terminate (newest-first, i.e. cheapest to lose).
    pub terminate: Vec<InstanceId>,
}

impl AutoScalingGroup {
    /// Create a group launching `itype` instances (spot or on-demand).
    pub fn new(
        policy: ScalingPolicy,
        itype: &'static InstanceType,
        spot: bool,
    ) -> Result<AutoScalingGroup, CloudError> {
        policy.validate()?;
        Ok(AutoScalingGroup {
            policy,
            itype,
            spot,
            instances: Vec::new(),
            next_id: 1,
            live: BTreeSet::new(),
            recorder: None,
        })
    }

    /// Attach a telemetry recorder: launches emit `instance_launch` events.
    pub fn attach_recorder(&mut self, recorder: Arc<Recorder>) {
        self.recorder = Some(recorder);
    }

    /// The policy in force.
    pub fn policy(&self) -> &ScalingPolicy {
        &self.policy
    }

    /// The instance type the group launches.
    pub fn instance_type(&self) -> &'static InstanceType {
        self.itype
    }

    /// All instances ever launched (including terminated), for cost accounting.
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// Instance lookup by id. O(1): ids are dense serials into the launch vector.
    pub fn instance(&self, id: InstanceId) -> Option<&Instance> {
        let inst = self.instances.get(id.0.checked_sub(1)? as usize)?;
        debug_assert_eq!(inst.id, id);
        Some(inst)
    }

    /// Mutable instance lookup by id. O(1). Use this for state transitions that
    /// keep the instance active (`mark_running`); terminations must go through
    /// [`AutoScalingGroup::terminate`] so the group's live set stays consistent.
    pub fn instance_mut(&mut self, id: InstanceId) -> Option<&mut Instance> {
        let inst = self.instances.get_mut(id.0.checked_sub(1)? as usize)?;
        debug_assert_eq!(inst.id, id);
        Some(inst)
    }

    /// Instances not yet terminated. O(1).
    pub fn active_count(&self) -> usize {
        self.live.len()
    }

    /// Evaluate the policy against the backlog and return what to do. The caller
    /// applies the decision via [`AutoScalingGroup::launch`] /
    /// [`AutoScalingGroup::terminate`] so that it can schedule the corresponding
    /// events.
    pub fn evaluate(&self, pending_messages: usize) -> ScaleDecision {
        let desired = self.policy.desired_capacity(pending_messages);
        let active = self.active_count() as u32;
        if desired > active {
            ScaleDecision { launch: desired - active, terminate: Vec::new() }
        } else if desired < active {
            // Scale in newest-first (shortest-lived instances lose least state):
            // the live set is already in that order.
            ScaleDecision {
                launch: 0,
                terminate: self
                    .live
                    .iter()
                    .take((active - desired) as usize)
                    .map(|&(_, id)| id)
                    .collect(),
            }
        } else {
            ScaleDecision::default()
        }
    }

    /// Launch one instance now; returns its id.
    pub fn launch(&mut self, now: SimTime) -> InstanceId {
        let id = InstanceId(self.next_id);
        self.next_id += 1;
        self.instances.push(Instance::launch(id, self.itype, self.spot, now));
        self.live.insert((Reverse(now), id));
        if let Some(rec) = &self.recorder {
            rec.event(
                now.as_secs(),
                "instance_launch",
                vec![
                    ("instance", JsonValue::from(id.0)),
                    ("itype", JsonValue::from(self.itype.name)),
                    ("spot", JsonValue::from(self.spot)),
                    ("active", JsonValue::from(self.active_count())),
                ],
            );
            rec.counter_add("instances_launched", 1);
        }
        id
    }

    /// Terminate an instance, removing it from the live set. Idempotent (a spot
    /// interruption can race a scale-in decision); returns whether this call did
    /// the termination. `Err` only for an id the group never issued.
    pub fn terminate(&mut self, id: InstanceId, now: SimTime) -> Result<bool, CloudError> {
        let key = {
            let inst = self
                .instance(id)
                .ok_or_else(|| CloudError::InvalidState(format!("{id} was never launched")))?;
            if inst.state == InstanceState::Terminated {
                return Ok(false);
            }
            (Reverse(inst.launched_at), id)
        };
        let removed = self.live.remove(&key);
        debug_assert!(removed, "live set out of sync with instance state");
        self.instance_mut(id).expect("checked above").terminate(now);
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group() -> AutoScalingGroup {
        AutoScalingGroup::new(
            ScalingPolicy { min_size: 1, max_size: 8, target_backlog_per_instance: 10 },
            InstanceType::by_name("r6a.4xlarge").unwrap(),
            true,
        )
        .unwrap()
    }

    #[test]
    fn desired_capacity_is_backlog_over_target_clamped() {
        let p = ScalingPolicy { min_size: 1, max_size: 8, target_backlog_per_instance: 10 };
        assert_eq!(p.desired_capacity(0), 1, "min floor");
        assert_eq!(p.desired_capacity(10), 1);
        assert_eq!(p.desired_capacity(11), 2);
        assert_eq!(p.desired_capacity(75), 8);
        assert_eq!(p.desired_capacity(1000), 8, "max ceiling");
    }

    #[test]
    fn evaluate_scales_out_then_in() {
        let mut g = group();
        let d = g.evaluate(35);
        assert_eq!(d.launch, 4);
        assert!(d.terminate.is_empty());
        for _ in 0..4 {
            g.launch(SimTime::from_secs(0.0));
        }
        assert_eq!(g.active_count(), 4);
        // Backlog drains → scale in to 1.
        let d = g.evaluate(5);
        assert_eq!(d.launch, 0);
        assert_eq!(d.terminate.len(), 3);
        // No-op at steady state.
        for id in d.terminate {
            assert!(g.terminate(id, SimTime::from_secs(100.0)).unwrap());
        }
        assert_eq!(g.evaluate(5), ScaleDecision::default());
    }

    #[test]
    fn scale_in_prefers_newest_instances() {
        let mut g = group();
        let old = g.launch(SimTime::from_secs(0.0));
        let newer = g.launch(SimTime::from_secs(100.0));
        let newest = g.launch(SimTime::from_secs(200.0));
        let d = g.evaluate(0); // desired = min = 1 → terminate 2
        assert_eq!(d.terminate, vec![newest, newer]);
        assert!(!d.terminate.contains(&old));
    }

    #[test]
    fn scale_in_ties_break_on_launch_order() {
        // Several instances launched the same instant (one ScaleTick burst): the
        // decision must list them in launch order, exactly like the legacy stable
        // sort did — this pins the tie-break the differential harness depends on.
        let mut g = AutoScalingGroup::new(
            ScalingPolicy { min_size: 0, max_size: 8, target_backlog_per_instance: 10 },
            InstanceType::by_name("r6a.4xlarge").unwrap(),
            true,
        )
        .unwrap();
        let a = g.launch(SimTime::from_secs(50.0));
        let b = g.launch(SimTime::from_secs(50.0));
        let c = g.launch(SimTime::from_secs(50.0));
        let older = g.launch(SimTime::from_secs(10.0));
        // All four live; desired 0 → everything terminates, same-time trio in
        // id order before the older straggler.
        assert_eq!(g.evaluate(0).terminate, vec![a, b, c, older]);
        // Partial scale-in takes a prefix of that order.
        assert_eq!(g.evaluate(25).terminate, vec![a]);
    }

    #[test]
    fn terminate_is_idempotent_and_updates_active_count() {
        let mut g = group();
        let id = g.launch(SimTime::from_secs(0.0));
        assert_eq!(g.active_count(), 1);
        assert!(g.terminate(id, SimTime::from_secs(5.0)).unwrap());
        assert_eq!(g.active_count(), 0);
        assert!(!g.terminate(id, SimTime::from_secs(9.0)).unwrap(), "second call is a no-op");
        assert_eq!(g.instance(id).unwrap().terminated_at, Some(SimTime::from_secs(5.0)));
        assert!(g.terminate(InstanceId(99), SimTime::ZERO).is_err(), "unknown id rejected");
    }

    #[test]
    fn invalid_policy_rejected() {
        let p = ScalingPolicy { min_size: 5, max_size: 2, target_backlog_per_instance: 1 };
        assert!(p.validate().is_err());
        let p = ScalingPolicy { min_size: 0, max_size: 2, target_backlog_per_instance: 0 };
        assert!(p.validate().is_err());
    }

    #[test]
    fn launched_instances_record_spot_flag_and_type() {
        let mut g = group();
        let id = g.launch(SimTime::from_secs(7.0));
        let inst = g.instance_mut(id).unwrap();
        assert!(inst.spot);
        assert_eq!(inst.itype.name, "r6a.4xlarge");
        assert_eq!(inst.launched_at, SimTime::from_secs(7.0));
    }
}
