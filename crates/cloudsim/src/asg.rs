//! AutoScalingGroup: queue-depth-driven fleet sizing.
//!
//! The paper scales its EC2 fleet with an AutoScalingGroup fed from the SQS backlog
//! (the standard "backlog per instance" pattern): desired capacity =
//! `ceil(pending_messages / target_backlog_per_instance)`, clamped to `[min, max]`.
//! The group only *decides* sizes; the orchestrator launches/terminates instances and
//! charges their cost.

use crate::instance::{Instance, InstanceId, InstanceState, InstanceType};
use crate::time::SimTime;
use crate::CloudError;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use telemetry::{JsonValue, Recorder};

/// Scaling policy parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ScalingPolicy {
    /// Minimum instances.
    pub min_size: u32,
    /// Maximum instances.
    pub max_size: u32,
    /// Target queue backlog per instance (messages).
    pub target_backlog_per_instance: u32,
}

impl Default for ScalingPolicy {
    fn default() -> Self {
        ScalingPolicy { min_size: 0, max_size: 16, target_backlog_per_instance: 4 }
    }
}

impl ScalingPolicy {
    /// Validate the policy.
    pub fn validate(&self) -> Result<(), CloudError> {
        if self.min_size > self.max_size {
            return Err(CloudError::InvalidParams("min_size > max_size".into()));
        }
        if self.target_backlog_per_instance == 0 {
            return Err(CloudError::InvalidParams("target backlog must be positive".into()));
        }
        Ok(())
    }

    /// Desired capacity for a backlog of `pending` messages.
    pub fn desired_capacity(&self, pending: usize) -> u32 {
        let need = (pending as u32).div_ceil(self.target_backlog_per_instance);
        need.clamp(self.min_size, self.max_size)
    }
}

/// The group: policy + fleet bookkeeping.
#[derive(Debug)]
pub struct AutoScalingGroup {
    policy: ScalingPolicy,
    itype: &'static InstanceType,
    spot: bool,
    instances: Vec<Instance>,
    next_id: u64,
    /// Telemetry sink, when attached. Scaling decisions never depend on it.
    recorder: Option<Arc<Recorder>>,
}

/// A scaling decision: how many instances to launch, and which to terminate.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct ScaleDecision {
    /// Number of new instances to launch.
    pub launch: u32,
    /// Ids to terminate (newest-first, i.e. cheapest to lose).
    pub terminate: Vec<InstanceId>,
}

impl AutoScalingGroup {
    /// Create a group launching `itype` instances (spot or on-demand).
    pub fn new(
        policy: ScalingPolicy,
        itype: &'static InstanceType,
        spot: bool,
    ) -> Result<AutoScalingGroup, CloudError> {
        policy.validate()?;
        Ok(AutoScalingGroup {
            policy,
            itype,
            spot,
            instances: Vec::new(),
            next_id: 1,
            recorder: None,
        })
    }

    /// Attach a telemetry recorder: launches emit `instance_launch` events.
    pub fn attach_recorder(&mut self, recorder: Arc<Recorder>) {
        self.recorder = Some(recorder);
    }

    /// The policy in force.
    pub fn policy(&self) -> &ScalingPolicy {
        &self.policy
    }

    /// The instance type the group launches.
    pub fn instance_type(&self) -> &'static InstanceType {
        self.itype
    }

    /// All instances ever launched (including terminated), for cost accounting.
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// Mutable instance lookup by id.
    pub fn instance_mut(&mut self, id: InstanceId) -> Option<&mut Instance> {
        self.instances.iter_mut().find(|i| i.id == id)
    }

    /// Instances not yet terminated.
    pub fn active_count(&self) -> usize {
        self.instances.iter().filter(|i| i.state != InstanceState::Terminated).count()
    }

    /// Evaluate the policy against the backlog and return what to do. The caller
    /// applies the decision via [`AutoScalingGroup::launch`] /
    /// [`AutoScalingGroup::instance_mut`] + `terminate` so that it can schedule the
    /// corresponding events.
    pub fn evaluate(&self, pending_messages: usize) -> ScaleDecision {
        let desired = self.policy.desired_capacity(pending_messages);
        let active = self.active_count() as u32;
        if desired > active {
            ScaleDecision { launch: desired - active, terminate: Vec::new() }
        } else if desired < active {
            // Scale in newest-first (shortest-lived instances lose least state).
            let mut live: Vec<&Instance> =
                self.instances.iter().filter(|i| i.state != InstanceState::Terminated).collect();
            live.sort_by_key(|i| std::cmp::Reverse(i.launched_at));
            ScaleDecision {
                launch: 0,
                terminate: live.iter().take((active - desired) as usize).map(|i| i.id).collect(),
            }
        } else {
            ScaleDecision::default()
        }
    }

    /// Launch one instance now; returns its id.
    pub fn launch(&mut self, now: SimTime) -> InstanceId {
        let id = InstanceId(self.next_id);
        self.next_id += 1;
        self.instances.push(Instance::launch(id, self.itype, self.spot, now));
        if let Some(rec) = &self.recorder {
            rec.event(
                now.as_secs(),
                "instance_launch",
                vec![
                    ("instance", JsonValue::from(id.0)),
                    ("itype", JsonValue::from(self.itype.name)),
                    ("spot", JsonValue::from(self.spot)),
                    ("active", JsonValue::from(self.active_count())),
                ],
            );
            rec.counter_add("instances_launched", 1);
        }
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group() -> AutoScalingGroup {
        AutoScalingGroup::new(
            ScalingPolicy { min_size: 1, max_size: 8, target_backlog_per_instance: 10 },
            InstanceType::by_name("r6a.4xlarge").unwrap(),
            true,
        )
        .unwrap()
    }

    #[test]
    fn desired_capacity_is_backlog_over_target_clamped() {
        let p = ScalingPolicy { min_size: 1, max_size: 8, target_backlog_per_instance: 10 };
        assert_eq!(p.desired_capacity(0), 1, "min floor");
        assert_eq!(p.desired_capacity(10), 1);
        assert_eq!(p.desired_capacity(11), 2);
        assert_eq!(p.desired_capacity(75), 8);
        assert_eq!(p.desired_capacity(1000), 8, "max ceiling");
    }

    #[test]
    fn evaluate_scales_out_then_in() {
        let mut g = group();
        let d = g.evaluate(35);
        assert_eq!(d.launch, 4);
        assert!(d.terminate.is_empty());
        for _ in 0..4 {
            g.launch(SimTime::from_secs(0.0));
        }
        assert_eq!(g.active_count(), 4);
        // Backlog drains → scale in to 1.
        let d = g.evaluate(5);
        assert_eq!(d.launch, 0);
        assert_eq!(d.terminate.len(), 3);
        // No-op at steady state.
        for id in d.terminate {
            g.instance_mut(id).unwrap().terminate(SimTime::from_secs(100.0));
        }
        assert_eq!(g.evaluate(5), ScaleDecision::default());
    }

    #[test]
    fn scale_in_prefers_newest_instances() {
        let mut g = group();
        let old = g.launch(SimTime::from_secs(0.0));
        let newer = g.launch(SimTime::from_secs(100.0));
        let newest = g.launch(SimTime::from_secs(200.0));
        let d = g.evaluate(0); // desired = min = 1 → terminate 2
        assert_eq!(d.terminate, vec![newest, newer]);
        assert!(!d.terminate.contains(&old));
    }

    #[test]
    fn invalid_policy_rejected() {
        let p = ScalingPolicy { min_size: 5, max_size: 2, target_backlog_per_instance: 1 };
        assert!(p.validate().is_err());
        let p = ScalingPolicy { min_size: 0, max_size: 2, target_backlog_per_instance: 0 };
        assert!(p.validate().is_err());
    }

    #[test]
    fn launched_instances_record_spot_flag_and_type() {
        let mut g = group();
        let id = g.launch(SimTime::from_secs(7.0));
        let inst = g.instance_mut(id).unwrap();
        assert!(inst.spot);
        assert_eq!(inst.itype.name, "r6a.4xlarge");
        assert_eq!(inst.launched_at, SimTime::from_secs(7.0));
    }
}
