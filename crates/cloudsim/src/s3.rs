//! S3-style object store.
//!
//! Holds the pre-built STAR index that instances download at init and the pipeline
//! results they upload on success. Transfer durations are modeled
//! (`bytes / bandwidth + latency`) for the cloud clock; contents are real bytes so
//! integration tests can round-trip archives and indices through it.

use crate::faults::{FaultInjector, FaultOp};
use crate::retry::RetryPolicy;
use crate::time::SimDuration;
use crate::CloudError;
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Transfer cost model for the store.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TransferModel {
    /// Sustained throughput in bytes/second.
    pub bandwidth_bytes_per_sec: f64,
    /// Fixed per-request latency in seconds.
    pub latency_secs: f64,
}

impl Default for TransferModel {
    /// ~400 MB/s in-region S3 to a large instance, 50 ms request latency.
    fn default() -> Self {
        TransferModel { bandwidth_bytes_per_sec: 400e6, latency_secs: 0.05 }
    }
}

impl TransferModel {
    /// Modeled duration to move `bytes`.
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        assert!(self.bandwidth_bytes_per_sec > 0.0);
        SimDuration::from_secs(self.latency_secs + bytes as f64 / self.bandwidth_bytes_per_sec)
    }
}

/// The object store: key → bytes, with transfer accounting.
#[derive(Debug, Default)]
pub struct ObjectStore {
    objects: BTreeMap<String, Bytes>,
    transfer: TransferModel,
    bytes_in: u64,
    bytes_out: u64,
}

impl ObjectStore {
    /// An empty store with the default transfer model.
    pub fn new() -> ObjectStore {
        ObjectStore::with_model(TransferModel::default())
    }

    /// An empty store with a custom transfer model.
    pub fn with_model(transfer: TransferModel) -> ObjectStore {
        ObjectStore { objects: BTreeMap::new(), transfer, bytes_in: 0, bytes_out: 0 }
    }

    /// Upload an object; returns the modeled transfer duration.
    pub fn put(&mut self, key: &str, data: Bytes) -> SimDuration {
        let d = self.transfer.transfer_time(data.len() as u64);
        self.bytes_in += data.len() as u64;
        self.objects.insert(key.to_string(), data);
        d
    }

    /// Download an object; returns the data and the modeled transfer duration.
    pub fn get(&mut self, key: &str) -> Result<(Bytes, SimDuration), CloudError> {
        let data =
            self.objects.get(key).cloned().ok_or_else(|| CloudError::NoSuchKey(key.to_string()))?;
        self.bytes_out += data.len() as u64;
        let d = self.transfer.transfer_time(data.len() as u64);
        Ok((data, d))
    }

    /// Object size without transferring.
    pub fn head(&self, key: &str) -> Result<u64, CloudError> {
        self.objects
            .get(key)
            .map(|d| d.len() as u64)
            .ok_or_else(|| CloudError::NoSuchKey(key.to_string()))
    }

    /// Delete an object (idempotent, like S3).
    pub fn delete(&mut self, key: &str) {
        self.objects.remove(key);
    }

    /// Keys under a prefix, sorted.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        self.objects.keys().filter(|k| k.starts_with(prefix)).cloned().collect()
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True when the store is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Total bytes uploaded / downloaded so far.
    pub fn traffic(&self) -> (u64, u64) {
        (self.bytes_in, self.bytes_out)
    }

    /// [`Self::get`] driven through a fault injector and retry policy. The returned
    /// duration charges each failed attempt's request latency plus the backoff slept
    /// between attempts, so injected faults slow the simulated clock the way real
    /// 503s slow a worker.
    pub fn get_retrying(
        &mut self,
        key: &str,
        faults: &mut FaultInjector,
        serial: u64,
        retry: &RetryPolicy,
    ) -> Result<(Bytes, SimDuration), CloudError> {
        let latency = self.transfer.latency_secs;
        let r = faults.with_retry(serial, FaultOp::S3Get, retry, || self.get(key));
        let overhead =
            SimDuration::from_secs((r.attempts - 1) as f64 * latency) + r.backoff;
        if r.outcome.is_ok() {
            faults.emit(
                "s3_get",
                vec![
                    ("key", telemetry::JsonValue::from(key)),
                    ("instance", telemetry::JsonValue::from(serial)),
                    ("attempts", telemetry::JsonValue::from(r.attempts)),
                ],
            );
        }
        r.outcome.map(|(data, d)| (data, d + overhead))
    }

    /// [`Self::put`] driven through a fault injector and retry policy; see
    /// [`Self::get_retrying`] for the duration accounting.
    pub fn put_retrying(
        &mut self,
        key: &str,
        data: Bytes,
        faults: &mut FaultInjector,
        serial: u64,
        retry: &RetryPolicy,
    ) -> Result<SimDuration, CloudError> {
        let latency = self.transfer.latency_secs;
        let bytes = data.len() as u64;
        let r = faults.with_retry(serial, FaultOp::S3Put, retry, || Ok(self.put(key, data.clone())));
        let overhead =
            SimDuration::from_secs((r.attempts - 1) as f64 * latency) + r.backoff;
        if r.outcome.is_ok() {
            faults.emit(
                "s3_put",
                vec![
                    ("key", telemetry::JsonValue::from(key)),
                    ("instance", telemetry::JsonValue::from(serial)),
                    ("attempts", telemetry::JsonValue::from(r.attempts)),
                    ("bytes", telemetry::JsonValue::from(bytes)),
                ],
            );
        }
        r.outcome.map(|d| d + overhead)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip_with_accounting() {
        let mut s = ObjectStore::with_model(TransferModel {
            bandwidth_bytes_per_sec: 100.0,
            latency_secs: 1.0,
        });
        let d_up = s.put("bucket/index.bin", Bytes::from(vec![1u8; 500]));
        assert!((d_up.as_secs() - 6.0).abs() < 1e-9);
        let (data, d_down) = s.get("bucket/index.bin").unwrap();
        assert_eq!(data.len(), 500);
        assert!((d_down.as_secs() - 6.0).abs() < 1e-9);
        assert_eq!(s.traffic(), (500, 500));
    }

    #[test]
    fn missing_keys_error() {
        let mut s = ObjectStore::new();
        assert!(matches!(s.get("nope"), Err(CloudError::NoSuchKey(_))));
        assert!(s.head("nope").is_err());
    }

    #[test]
    fn list_filters_by_prefix_sorted() {
        let mut s = ObjectStore::new();
        s.put("results/SRR2", Bytes::from_static(b"x"));
        s.put("results/SRR1", Bytes::from_static(b"y"));
        s.put("index/r111", Bytes::from_static(b"z"));
        assert_eq!(s.list("results/"), vec!["results/SRR1".to_string(), "results/SRR2".to_string()]);
        assert_eq!(s.list("").len(), 3);
    }

    #[test]
    fn delete_is_idempotent() {
        let mut s = ObjectStore::new();
        s.put("k", Bytes::from_static(b"v"));
        s.delete("k");
        s.delete("k");
        assert!(s.is_empty());
    }

    #[test]
    fn head_does_not_count_traffic() {
        let mut s = ObjectStore::new();
        s.put("k", Bytes::from(vec![0u8; 100]));
        let (in0, out0) = s.traffic();
        assert_eq!(s.head("k").unwrap(), 100);
        assert_eq!(s.traffic(), (in0, out0));
    }

    #[test]
    fn retrying_ops_charge_failed_attempts_and_backoff() {
        use crate::faults::FaultPlan;
        let mut s = ObjectStore::with_model(TransferModel {
            bandwidth_bytes_per_sec: 100.0,
            latency_secs: 1.0,
        });
        s.put("k", Bytes::from(vec![0u8; 100]));
        // Always-failing S3 GET exhausts the policy.
        let mut inj = FaultInjector::new(FaultPlan { s3_get_fail: 1.0, seed: 1, ..FaultPlan::default() });
        let policy = RetryPolicy::default();
        let err = s.get_retrying("k", &mut inj, 0, &policy).unwrap_err();
        assert!(matches!(err, CloudError::RetriesExhausted(_)));
        assert_eq!(inj.tallies().retries_exhausted, 1);
        // Fault-free path matches the plain op's duration.
        let mut clean = FaultInjector::new(FaultPlan::default());
        let (data, d) = s.get_retrying("k", &mut clean, 0, &policy).unwrap();
        assert_eq!(data.len(), 100);
        assert!((d.as_secs() - 2.0).abs() < 1e-9, "one attempt, no overhead: {d}");
        let d_up = s.put_retrying("k2", Bytes::from(vec![0u8; 100]), &mut clean, 0, &policy).unwrap();
        assert!((d_up.as_secs() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn overwrite_replaces_content() {
        let mut s = ObjectStore::new();
        s.put("k", Bytes::from_static(b"old"));
        s.put("k", Bytes::from_static(b"newer"));
        assert_eq!(s.head("k").unwrap(), 5);
        assert_eq!(s.len(), 1);
    }
}
