//! Spot market model: discounted pricing and Poisson interruptions.
//!
//! The paper's architecture runs the AutoScalingGroup "in spot mode for cheaper
//! processing"; the SQS visibility timeout makes interrupted work re-deliverable.
//! [`SpotMarket`] provides the two knobs that matter: a price discount factor and a
//! memoryless interruption process (exponential inter-arrival per instance).

use crate::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Spot market parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SpotMarket {
    /// Spot price as a fraction of on-demand (AWS spot typically 0.3–0.4 for r6a).
    pub price_factor: f64,
    /// Mean interruptions per instance-hour (0 disables interruptions).
    pub interruptions_per_hour: f64,
    /// Seed for the interruption process.
    pub seed: u64,
}

impl Default for SpotMarket {
    fn default() -> Self {
        SpotMarket { price_factor: 0.35, interruptions_per_hour: 0.0, seed: 7 }
    }
}

/// Deterministic exponential waiting time (hours) at `rate_per_hour`, addressed by
/// `(seed, stream)`. The seeded sampler behind [`SpotMarket::sample_interruption`],
/// exposed so fault-injection layers (burst windows) draw from the same process.
pub fn exponential_hours(seed: u64, stream: u64, rate_per_hour: f64) -> f64 {
    assert!(rate_per_hour > 0.0);
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(stream));
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    -u.ln() / rate_per_hour
}

/// Which process produced a reclaim: the market's base Poisson stream or a
/// fault-plan [`crate::faults::SpotBurst`] window. Both flow through the same
/// schedule ([`crate::faults::FaultInjector::reclaim_schedule`]) so interruption
/// *notices* cannot diverge between the two sources.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReclaimSource {
    /// Base spot-market interruption ([`SpotMarket::sample_interruption`]).
    Market,
    /// Elevated-pressure burst window from the fault plan.
    Burst,
}

impl ReclaimSource {
    /// Stable snake_case name, used in telemetry events.
    pub fn name(self) -> &'static str {
        match self {
            ReclaimSource::Market => "market",
            ReclaimSource::Burst => "burst",
        }
    }
}

/// One scheduled spot reclaim for an instance: the instant capacity is taken
/// back, tagged with the process that sampled it. AWS precedes the reclaim with
/// a two-minute interruption notice; the simulation derives the notice instant
/// from `at` minus the plan's notice lead time.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Reclaim {
    /// When the instance is reclaimed.
    pub at: SimTime,
    /// Which sampling process produced it.
    pub source: ReclaimSource,
}

impl SpotMarket {
    /// Spot USD/hour for an instance type.
    pub fn hourly_price(&self, on_demand_hourly_usd: f64) -> f64 {
        on_demand_hourly_usd * self.price_factor
    }

    /// Sample the interruption time for an instance launched at `launched_at`.
    /// Returns `None` when interruptions are disabled. Deterministic per
    /// `(seed, instance_serial)`.
    pub fn sample_interruption(&self, launched_at: SimTime, instance_serial: u64) -> Option<SimTime> {
        if self.interruptions_per_hour <= 0.0 {
            return None;
        }
        let hours = exponential_hours(self.seed, instance_serial, self.interruptions_per_hour);
        Some(launched_at + SimDuration::from_hours(hours))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spot_price_is_discounted() {
        let m = SpotMarket { price_factor: 0.35, ..SpotMarket::default() };
        assert!((m.hourly_price(1.0) - 0.35).abs() < 1e-12);
    }

    #[test]
    fn zero_rate_disables_interruptions() {
        let m = SpotMarket::default();
        assert!(m.sample_interruption(SimTime::ZERO, 1).is_none());
    }

    #[test]
    fn interruptions_are_deterministic_per_instance() {
        let m = SpotMarket { interruptions_per_hour: 0.5, ..SpotMarket::default() };
        let a = m.sample_interruption(SimTime::ZERO, 42).unwrap();
        let b = m.sample_interruption(SimTime::ZERO, 42).unwrap();
        assert_eq!(a, b);
        let c = m.sample_interruption(SimTime::ZERO, 43).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn mean_interruption_time_tracks_rate() {
        let m = SpotMarket { interruptions_per_hour: 2.0, ..SpotMarket::default() };
        let n = 2000;
        let mean_hours: f64 = (0..n)
            .map(|i| m.sample_interruption(SimTime::ZERO, i).unwrap().as_hours())
            .sum::<f64>()
            / n as f64;
        // Exponential with λ=2/h → mean 0.5 h.
        assert!((mean_hours - 0.5).abs() < 0.05, "mean {mean_hours}");
    }

    #[test]
    fn interruption_is_after_launch() {
        let m = SpotMarket { interruptions_per_hour: 1.0, ..SpotMarket::default() };
        let launch = SimTime::from_secs(5000.0);
        for i in 0..100 {
            assert!(m.sample_interruption(launch, i).unwrap() > launch);
        }
    }
}
