//! SQS-style work queue with visibility timeouts and at-least-once delivery.
//!
//! The architecture's backbone (Fig. 2): SRA ids are sent to the queue, instances
//! poll, and a message only disappears when the worker *deletes* it after success. If
//! a worker dies (spot reclaim) or stalls past the visibility timeout, the message
//! becomes visible again and another instance picks it up.
//!
//! With [`SqsQueue::with_max_receive_count`] the queue also models a dead-letter
//! queue: a message that has already been delivered `max_receive_count` times is
//! moved to the DLQ instead of being delivered again, so a poison accession cannot
//! spin the fleet forever — and campaign accounting can prove conservation
//! (`completed + dead_lettered == sent`).

use crate::time::{SimDuration, SimTime};
use crate::CloudError;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Receipt handle returned by [`SqsQueue::receive`]; required to delete or extend.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ReceiptHandle(u64);

/// A message with its delivery metadata.
#[derive(Clone, Debug)]
struct StoredMessage<M> {
    body: M,
    /// Times this message has been delivered.
    receive_count: u32,
    /// In-flight until this time (None = visible).
    invisible_until: Option<SimTime>,
    /// Receipt of the current in-flight delivery.
    current_receipt: Option<ReceiptHandle>,
    /// True once deleted.
    deleted: bool,
    /// When the message was sent.
    sent_at: SimTime,
    /// When it was first delivered, once delivered.
    first_received_at: Option<SimTime>,
}

/// The queue. Time never advances inside it: callers pass `now` explicitly (from the
/// event queue) and the message store reconciles visibility lazily.
#[derive(Debug)]
pub struct SqsQueue<M> {
    messages: Vec<StoredMessage<M>>,
    /// Indices of (potentially) visible messages, FIFO.
    visible: VecDeque<usize>,
    default_visibility: SimDuration,
    next_receipt: u64,
    /// Deliveries allowed before a message dead-letters (None = unbounded).
    max_receive_count: Option<u32>,
    /// Bodies moved to the dead-letter queue, in dead-letter order.
    dead_letters: Vec<M>,
}

impl<M: Clone> SqsQueue<M> {
    /// An empty queue with the given default visibility timeout.
    pub fn new(default_visibility: SimDuration) -> SqsQueue<M> {
        SqsQueue {
            messages: Vec::new(),
            visible: VecDeque::new(),
            default_visibility,
            next_receipt: 1,
            max_receive_count: None,
            dead_letters: Vec::new(),
        }
    }

    /// Attach a dead-letter policy: a message already delivered `n` times moves to
    /// the DLQ instead of being delivered an `n+1`-th time (AWS redrive semantics).
    pub fn with_max_receive_count(mut self, n: u32) -> SqsQueue<M> {
        assert!(n >= 1, "max_receive_count must be >= 1");
        self.max_receive_count = Some(n);
        self
    }

    /// Send a message at campaign start (`t = 0`).
    pub fn send(&mut self, body: M) {
        self.send_at(body, SimTime::ZERO);
    }

    /// Send a message at time `now`, timestamping it so queue wait
    /// (send → first receive) can be measured.
    pub fn send_at(&mut self, body: M, now: SimTime) {
        let idx = self.messages.len();
        self.messages.push(StoredMessage {
            body,
            receive_count: 0,
            invisible_until: None,
            current_receipt: None,
            deleted: false,
            sent_at: now,
            first_received_at: None,
        });
        self.visible.push_back(idx);
    }

    /// Try to receive one message at time `now`. Returns the body, its receipt
    /// handle, and the delivery count (1 for first delivery).
    pub fn receive(&mut self, now: SimTime) -> Option<(M, ReceiptHandle, u32)> {
        self.reconcile(now);
        while let Some(idx) = self.visible.pop_front() {
            let msg = &mut self.messages[idx];
            if msg.deleted {
                continue;
            }
            if let Some(t) = msg.invisible_until {
                if t > now {
                    // Still in flight: keep it out of the visible list; reconcile
                    // will re-add it on expiry.
                    continue;
                }
            }
            if let Some(max) = self.max_receive_count {
                if msg.receive_count >= max {
                    // Redrive: the message used up its deliveries; dead-letter it.
                    msg.deleted = true;
                    msg.invisible_until = None;
                    msg.current_receipt = None;
                    self.dead_letters.push(msg.body.clone());
                    continue;
                }
            }
            msg.receive_count += 1;
            if msg.first_received_at.is_none() {
                msg.first_received_at = Some(now);
            }
            msg.invisible_until = Some(now + self.default_visibility);
            let receipt = ReceiptHandle(self.next_receipt);
            self.next_receipt += 1;
            msg.current_receipt = Some(receipt);
            return Some((msg.body.clone(), receipt, msg.receive_count));
        }
        None
    }

    /// Delete a message by receipt. Fails if the receipt is stale (the message timed
    /// out and was redelivered, or was already deleted).
    pub fn delete(&mut self, receipt: ReceiptHandle) -> Result<(), CloudError> {
        let msg = self
            .messages
            .iter_mut()
            .find(|m| m.current_receipt == Some(receipt) && !m.deleted)
            .ok_or_else(|| CloudError::StaleReceipt(format!("{receipt:?}")))?;
        msg.deleted = true;
        msg.current_receipt = None;
        Ok(())
    }

    /// Extend (or shrink) the visibility of an in-flight message — workers heartbeat
    /// long alignments this way.
    pub fn change_visibility(
        &mut self,
        receipt: ReceiptHandle,
        now: SimTime,
        timeout: SimDuration,
    ) -> Result<(), CloudError> {
        let msg = self
            .messages
            .iter_mut()
            .find(|m| m.current_receipt == Some(receipt) && !m.deleted)
            .ok_or_else(|| CloudError::StaleReceipt(format!("{receipt:?}")))?;
        msg.invisible_until = Some(now + timeout);
        Ok(())
    }

    /// Messages currently visible (deliverable) at `now`.
    pub fn visible_count(&mut self, now: SimTime) -> usize {
        self.reconcile(now);
        self.visible
            .iter()
            .filter(|&&i| {
                let m = &self.messages[i];
                !m.deleted && m.invisible_until.is_none_or(|t| t <= now)
            })
            .count()
    }

    /// Messages in flight (delivered, not deleted, not yet expired) at `now`.
    pub fn in_flight_count(&self, now: SimTime) -> usize {
        self.messages
            .iter()
            .filter(|m| !m.deleted && m.invisible_until.is_some_and(|t| t > now))
            .count()
    }

    /// Total undeleted messages (visible + in flight).
    pub fn pending_count(&self) -> usize {
        self.messages.iter().filter(|m| !m.deleted).count()
    }

    /// Queue wait of the message currently held under `receipt`: the interval from
    /// send to *first* delivery (at-least-once redeliveries don't reset it).
    /// `None` for a stale receipt.
    pub fn queue_wait(&self, receipt: ReceiptHandle) -> Option<SimDuration> {
        self.messages
            .iter()
            .find(|m| m.current_receipt == Some(receipt) && !m.deleted)
            .and_then(|m| m.first_received_at.map(|t| t - m.sent_at))
    }

    /// Bodies that were dead-lettered, in DLQ arrival order.
    pub fn dead_letters(&self) -> &[M] {
        &self.dead_letters
    }

    /// Number of dead-lettered messages.
    pub fn dead_letter_count(&self) -> usize {
        self.dead_letters.len()
    }

    /// Force an in-flight message back to visible *without* invalidating the
    /// receipt — models a duplicate delivery (SQS's at-least-once escape hatch:
    /// visibility is best-effort, not a lock). The original consumer keeps a valid
    /// receipt until the message is delivered again.
    pub fn force_visible(&mut self, receipt: ReceiptHandle) -> Result<(), CloudError> {
        let idx = self
            .messages
            .iter()
            .position(|m| m.current_receipt == Some(receipt) && !m.deleted)
            .ok_or_else(|| CloudError::StaleReceipt(format!("{receipt:?}")))?;
        self.messages[idx].invisible_until = None;
        if !self.visible.contains(&idx) {
            self.visible.push_back(idx);
        }
        Ok(())
    }

    /// Re-queue messages whose visibility timeout expired.
    fn reconcile(&mut self, now: SimTime) {
        for (idx, msg) in self.messages.iter_mut().enumerate() {
            if msg.deleted {
                continue;
            }
            if let Some(t) = msg.invisible_until {
                if t <= now {
                    // Expired: receipt becomes stale, message is visible again.
                    msg.invisible_until = None;
                    msg.current_receipt = None;
                    if !self.visible.contains(&idx) {
                        self.visible.push_back(idx);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn queue() -> SqsQueue<String> {
        SqsQueue::new(SimDuration::from_secs(30.0))
    }

    #[test]
    fn fifo_delivery_and_delete() {
        let mut q = queue();
        q.send("a".into());
        q.send("b".into());
        let (m1, r1, c1) = q.receive(t(0.0)).unwrap();
        assert_eq!((m1.as_str(), c1), ("a", 1));
        let (m2, _, _) = q.receive(t(0.0)).unwrap();
        assert_eq!(m2, "b");
        assert!(q.receive(t(0.0)).is_none(), "both in flight");
        q.delete(r1).unwrap();
        assert_eq!(q.pending_count(), 1);
    }

    #[test]
    fn visibility_timeout_redelivers() {
        let mut q = queue();
        q.send("a".into());
        let (_, r, c) = q.receive(t(0.0)).unwrap();
        assert_eq!(c, 1);
        // Before expiry: invisible.
        assert!(q.receive(t(29.0)).is_none());
        // After expiry: redelivered with bumped count, old receipt stale.
        let (_, _, c2) = q.receive(t(31.0)).unwrap();
        assert_eq!(c2, 2);
        assert!(q.delete(r).is_err(), "stale receipt must not delete");
        assert_eq!(q.pending_count(), 1);
    }

    #[test]
    fn delete_before_timeout_wins() {
        let mut q = queue();
        q.send("a".into());
        let (_, r, _) = q.receive(t(0.0)).unwrap();
        q.delete(r).unwrap();
        assert!(q.receive(t(100.0)).is_none());
        assert_eq!(q.pending_count(), 0);
        assert!(q.delete(r).is_err(), "double delete rejected");
    }

    #[test]
    fn change_visibility_extends_the_lease() {
        let mut q = queue();
        q.send("a".into());
        let (_, r, _) = q.receive(t(0.0)).unwrap();
        q.change_visibility(r, t(20.0), SimDuration::from_secs(100.0)).unwrap();
        assert!(q.receive(t(60.0)).is_none(), "lease extended to t=120");
        let (_, _, c) = q.receive(t(121.0)).unwrap();
        assert_eq!(c, 2);
    }

    #[test]
    fn counts_reflect_states() {
        let mut q = queue();
        for i in 0..5 {
            q.send(format!("m{i}"));
        }
        assert_eq!(q.visible_count(t(0.0)), 5);
        let (_, r, _) = q.receive(t(0.0)).unwrap();
        let _ = q.receive(t(0.0)).unwrap();
        assert_eq!(q.visible_count(t(0.0)), 3);
        assert_eq!(q.in_flight_count(t(0.0)), 2);
        assert_eq!(q.pending_count(), 5);
        q.delete(r).unwrap();
        assert_eq!(q.pending_count(), 4);
        // After timeout the undeleted in-flight message returns.
        assert_eq!(q.visible_count(t(31.0)), 4);
        assert_eq!(q.in_flight_count(t(31.0)), 0);
    }

    #[test]
    fn empty_queue_returns_none() {
        let mut q = queue();
        assert!(q.receive(t(0.0)).is_none());
        assert_eq!(q.visible_count(t(0.0)), 0);
    }

    #[test]
    fn dead_letter_after_max_receive_count() {
        let mut q: SqsQueue<String> =
            SqsQueue::new(SimDuration::from_secs(10.0)).with_max_receive_count(2);
        q.send("poison".into());
        // Two deliveries allowed; never deleted.
        let (_, _, c1) = q.receive(t(0.0)).unwrap();
        assert_eq!(c1, 1);
        let (_, _, c2) = q.receive(t(11.0)).unwrap();
        assert_eq!(c2, 2);
        // Third delivery attempt dead-letters instead.
        assert!(q.receive(t(22.0)).is_none());
        assert_eq!(q.dead_letters(), &["poison".to_string()]);
        assert_eq!(q.pending_count(), 0, "dead-lettered messages are no longer pending");
        // And it never comes back.
        assert!(q.receive(t(100.0)).is_none());
        assert_eq!(q.dead_letter_count(), 1);
    }

    #[test]
    fn delete_within_allowance_avoids_the_dlq() {
        let mut q: SqsQueue<String> =
            SqsQueue::new(SimDuration::from_secs(10.0)).with_max_receive_count(2);
        q.send("ok".into());
        let _ = q.receive(t(0.0)).unwrap();
        let (_, r2, _) = q.receive(t(11.0)).unwrap();
        q.delete(r2).unwrap();
        assert!(q.receive(t(100.0)).is_none());
        assert_eq!(q.dead_letter_count(), 0);
    }

    #[test]
    fn queue_wait_spans_send_to_first_receive_only() {
        let mut q = queue();
        q.send_at("a".into(), t(2.0));
        let (_, r1, _) = q.receive(t(7.5)).unwrap();
        assert_eq!(q.queue_wait(r1), Some(SimDuration::from_secs(5.5)));
        // Redelivery after timeout: wait still measures to the *first* receive.
        let (_, r2, c2) = q.receive(t(40.0)).unwrap();
        assert_eq!(c2, 2);
        assert_eq!(q.queue_wait(r2), Some(SimDuration::from_secs(5.5)));
        assert_eq!(q.queue_wait(r1), None, "stale receipt has no wait");
        // Plain `send` stamps t = 0.
        q.send("b".into());
        let (_, r3, _) = q.receive(t(41.0)).unwrap();
        assert_eq!(q.queue_wait(r3), Some(SimDuration::from_secs(41.0)));
    }

    #[test]
    fn force_visible_models_duplicate_delivery() {
        let mut q = queue();
        q.send("a".into());
        let (_, r1, c1) = q.receive(t(0.0)).unwrap();
        assert_eq!(c1, 1);
        q.force_visible(r1).unwrap();
        // Duplicate delivery while the first consumer still works on it.
        let (_, r2, c2) = q.receive(t(1.0)).unwrap();
        assert_eq!(c2, 2);
        // First receipt is now stale; second consumer's delete wins.
        assert!(q.delete(r1).is_err());
        q.delete(r2).unwrap();
        assert_eq!(q.pending_count(), 0);
    }

    #[test]
    fn many_cycles_never_lose_or_duplicate_live_messages() {
        // Property-style: random receive/delete/timeout interleavings keep
        // pending = sent - deleted.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        let mut q: SqsQueue<u32> = SqsQueue::new(SimDuration::from_secs(10.0));
        let mut now = 0.0f64;
        let mut deleted = 0usize;
        for i in 0..200u32 {
            q.send(i);
        }
        let mut receipts: Vec<ReceiptHandle> = Vec::new();
        for _ in 0..2000 {
            now += rng.gen_range(0.1..3.0);
            match rng.gen_range(0..3) {
                0 => {
                    if let Some((_, r, _)) = q.receive(t(now)) {
                        receipts.push(r);
                    }
                }
                1 => {
                    if !receipts.is_empty() {
                        let r = receipts.swap_remove(rng.gen_range(0..receipts.len()));
                        if q.delete(r).is_ok() {
                            deleted += 1;
                        }
                    }
                }
                _ => { /* just let time pass */ }
            }
        }
        assert_eq!(q.pending_count(), 200 - deleted);
    }
}
