//! SQS-style work queue with visibility timeouts and at-least-once delivery.
//!
//! The architecture's backbone (Fig. 2): SRA ids are sent to the queue, instances
//! poll, and a message only disappears when the worker *deletes* it after success. If
//! a worker dies (spot reclaim) or stalls past the visibility timeout, the message
//! becomes visible again and another instance picks it up.
//!
//! With [`SqsQueue::with_max_receive_count`] the queue also models a dead-letter
//! queue: a message that has already been delivered `max_receive_count` times is
//! moved to the DLQ instead of being delivered again, so a poison accession cannot
//! spin the fleet forever — and campaign accounting can prove conservation
//! (`completed + dead_lettered == sent`).
//!
//! # Discrete-event internals
//!
//! This implementation is kernel-grade: nothing scans the message store. Visibility
//! expiries are *scheduled events* on an internal min-heap keyed `(expiry, index)`;
//! [`SqsQueue::receive`] drains only the entries that have actually come due,
//! re-queueing them in message-index order (the same order the original lazy
//! full-scan reconciliation produced, so delivery schedules are unchanged).
//! Receipt lookups go through an index map instead of a linear search, and
//! [`SqsQueue::pending_count`] is a maintained counter. All operations are
//! O(log n) or better; a 10^6-message campaign costs the same per operation as a
//! 30-message one. The map is lookup-only (never iterated), so hashing cannot
//! perturb delivery order.
//!
//! This implementation replaced an earlier full-scan queue after the property
//! suites proved the two observationally identical, operation for operation;
//! the scan version (and the per-tick orchestration loop it drove) has since
//! been deleted. The semantics the oracle pinned — delivery order, receipt
//! numbering, dead-letter order — are now pinned directly by the reference
//! model in the queue property tests.

use crate::time::{SimDuration, SimTime};
use crate::CloudError;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// Receipt handle returned by [`SqsQueue::receive`]; required to delete or extend.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ReceiptHandle(u64);

/// A message with its delivery metadata.
#[derive(Clone, Debug)]
struct StoredMessage<M> {
    body: M,
    /// Times this message has been delivered.
    receive_count: u32,
    /// In-flight until this time (None = visible).
    invisible_until: Option<SimTime>,
    /// Receipt of the current in-flight delivery.
    current_receipt: Option<ReceiptHandle>,
    /// True once deleted.
    deleted: bool,
    /// True while the message's index sits in the visible deque.
    queued: bool,
    /// When the message was sent.
    sent_at: SimTime,
    /// When it was first delivered, once delivered.
    first_received_at: Option<SimTime>,
}

/// The queue. Time never advances inside it: callers pass `now` explicitly (from the
/// event queue) and visibility expiries fire from an internal event heap.
#[derive(Debug)]
pub struct SqsQueue<M> {
    messages: Vec<StoredMessage<M>>,
    /// Indices of (potentially) visible messages, FIFO.
    visible: VecDeque<usize>,
    /// Scheduled visibility expiries `(when, message index)`. Entries are
    /// validated against the message's current `invisible_until` when they come
    /// due, so a lease extension simply strands the old entry.
    expiries: BinaryHeap<Reverse<(SimTime, usize)>>,
    /// Live receipt → message index. Lookup-only: never iterated, so the map's
    /// internal order cannot influence anything observable.
    receipts: HashMap<u64, usize>,
    default_visibility: SimDuration,
    next_receipt: u64,
    /// Deliveries allowed before a message dead-letters (None = unbounded).
    max_receive_count: Option<u32>,
    /// Bodies moved to the dead-letter queue, in dead-letter order.
    dead_letters: Vec<M>,
    /// Undeleted messages (maintained counter; answers `pending_count` in O(1)).
    live: usize,
}

impl<M: Clone> SqsQueue<M> {
    /// An empty queue with the given default visibility timeout.
    pub fn new(default_visibility: SimDuration) -> SqsQueue<M> {
        SqsQueue {
            messages: Vec::new(),
            visible: VecDeque::new(),
            expiries: BinaryHeap::new(),
            receipts: HashMap::new(),
            default_visibility,
            next_receipt: 1,
            max_receive_count: None,
            dead_letters: Vec::new(),
            live: 0,
        }
    }

    /// Attach a dead-letter policy: a message already delivered `n` times moves to
    /// the DLQ instead of being delivered an `n+1`-th time (AWS redrive semantics).
    pub fn with_max_receive_count(mut self, n: u32) -> SqsQueue<M> {
        assert!(n >= 1, "max_receive_count must be >= 1");
        self.max_receive_count = Some(n);
        self
    }

    /// Send a message at campaign start (`t = 0`).
    pub fn send(&mut self, body: M) {
        self.send_at(body, SimTime::ZERO);
    }

    /// Send a message at time `now`, timestamping it so queue wait
    /// (send → first receive) can be measured.
    pub fn send_at(&mut self, body: M, now: SimTime) {
        let idx = self.messages.len();
        self.messages.push(StoredMessage {
            body,
            receive_count: 0,
            invisible_until: None,
            current_receipt: None,
            deleted: false,
            queued: true,
            sent_at: now,
            first_received_at: None,
        });
        self.visible.push_back(idx);
        self.live += 1;
    }

    /// Try to receive one message at time `now`. Returns the body, its receipt
    /// handle, and the delivery count (1 for first delivery).
    pub fn receive(&mut self, now: SimTime) -> Option<(M, ReceiptHandle, u32)> {
        self.reconcile(now);
        while let Some(idx) = self.visible.pop_front() {
            self.messages[idx].queued = false;
            let msg = &mut self.messages[idx];
            if msg.deleted {
                continue;
            }
            if let Some(t) = msg.invisible_until {
                if t > now {
                    // Re-leased while queued (duplicate-delivery dance): drop it
                    // from the deque; its expiry event will re-queue it.
                    continue;
                }
            }
            if let Some(max) = self.max_receive_count {
                if msg.receive_count >= max {
                    // Redrive: the message used up its deliveries; dead-letter it.
                    msg.deleted = true;
                    msg.invisible_until = None;
                    if let Some(r) = msg.current_receipt.take() {
                        self.receipts.remove(&r.0);
                    }
                    self.dead_letters.push(msg.body.clone());
                    self.live -= 1;
                    continue;
                }
            }
            msg.receive_count += 1;
            if msg.first_received_at.is_none() {
                msg.first_received_at = Some(now);
            }
            let until = now + self.default_visibility;
            msg.invisible_until = Some(until);
            if let Some(old) = msg.current_receipt.take() {
                // A duplicate delivery superseded: the first consumer's receipt
                // goes stale the moment the message is delivered again.
                self.receipts.remove(&old.0);
            }
            let receipt = ReceiptHandle(self.next_receipt);
            self.next_receipt += 1;
            msg.current_receipt = Some(receipt);
            let body = msg.body.clone();
            let count = msg.receive_count;
            self.receipts.insert(receipt.0, idx);
            self.expiries.push(Reverse((until, idx)));
            return Some((body, receipt, count));
        }
        None
    }

    /// Look up a live receipt, or report it stale.
    fn receipt_index(&self, receipt: ReceiptHandle) -> Result<usize, CloudError> {
        self.receipts
            .get(&receipt.0)
            .copied()
            .ok_or_else(|| CloudError::StaleReceipt(format!("{receipt:?}")))
    }

    /// Delete a message by receipt. Fails if the receipt is stale (the message timed
    /// out and was redelivered, or was already deleted).
    pub fn delete(&mut self, receipt: ReceiptHandle) -> Result<(), CloudError> {
        let idx = self.receipt_index(receipt)?;
        let msg = &mut self.messages[idx];
        debug_assert!(!msg.deleted && msg.current_receipt == Some(receipt));
        msg.deleted = true;
        msg.current_receipt = None;
        self.receipts.remove(&receipt.0);
        self.live -= 1;
        Ok(())
    }

    /// Extend (or shrink) the visibility of an in-flight message — workers heartbeat
    /// long alignments this way.
    pub fn change_visibility(
        &mut self,
        receipt: ReceiptHandle,
        now: SimTime,
        timeout: SimDuration,
    ) -> Result<(), CloudError> {
        let idx = self.receipt_index(receipt)?;
        let until = now + timeout;
        self.messages[idx].invisible_until = Some(until);
        self.expiries.push(Reverse((until, idx)));
        Ok(())
    }

    /// Messages currently visible (deliverable) at `now`.
    pub fn visible_count(&mut self, now: SimTime) -> usize {
        self.reconcile(now);
        self.visible
            .iter()
            .filter(|&&i| {
                let m = &self.messages[i];
                !m.deleted && m.invisible_until.is_none_or(|t| t <= now)
            })
            .count()
    }

    /// Messages in flight (delivered, not deleted, not yet expired) at `now`.
    pub fn in_flight_count(&self, now: SimTime) -> usize {
        self.messages
            .iter()
            .filter(|m| !m.deleted && m.invisible_until.is_some_and(|t| t > now))
            .count()
    }

    /// Total undeleted messages (visible + in flight). O(1).
    pub fn pending_count(&self) -> usize {
        self.live
    }

    /// The earliest scheduled visibility expiry still in force, if any — the next
    /// instant the visible set can grow without a new send. Event-driven callers
    /// use this to schedule their wake-up instead of polling blind.
    pub fn next_visible_at(&mut self) -> Option<SimTime> {
        while let Some(&Reverse((t, idx))) = self.expiries.peek() {
            let msg = &self.messages[idx];
            if !msg.deleted && msg.invisible_until == Some(t) {
                return Some(t);
            }
            // Stranded entry (lease extended, message deleted, or already
            // reconciled): discard and keep looking.
            self.expiries.pop();
        }
        None
    }

    /// Queue wait of the message currently held under `receipt`: the interval from
    /// send to *first* delivery (at-least-once redeliveries don't reset it).
    /// `None` for a stale receipt.
    pub fn queue_wait(&self, receipt: ReceiptHandle) -> Option<SimDuration> {
        let idx = self.receipts.get(&receipt.0).copied()?;
        let m = &self.messages[idx];
        m.first_received_at.map(|t| t - m.sent_at)
    }

    /// Bodies that were dead-lettered, in DLQ arrival order.
    pub fn dead_letters(&self) -> &[M] {
        &self.dead_letters
    }

    /// Number of dead-lettered messages.
    pub fn dead_letter_count(&self) -> usize {
        self.dead_letters.len()
    }

    /// Force an in-flight message back to visible *without* invalidating the
    /// receipt — models a duplicate delivery (SQS's at-least-once escape hatch:
    /// visibility is best-effort, not a lock). The original consumer keeps a valid
    /// receipt until the message is delivered again.
    pub fn force_visible(&mut self, receipt: ReceiptHandle) -> Result<(), CloudError> {
        let idx = self.receipt_index(receipt)?;
        let msg = &mut self.messages[idx];
        msg.invisible_until = None;
        if !msg.queued {
            msg.queued = true;
            self.visible.push_back(idx);
        }
        Ok(())
    }

    /// Hand an in-flight message back to the queue immediately (visibility → 0)
    /// and invalidate the receipt — the graceful-drain counterpart of
    /// [`SqsQueue::force_visible`]. A worker that received an interruption
    /// notice renounces its message instead of letting the lease lapse, so the
    /// message is redeliverable *now* rather than after the visibility timeout.
    /// Unlike `force_visible`, the caller's receipt goes stale: the worker has
    /// given the message up and can no longer delete or extend it.
    pub fn release(&mut self, receipt: ReceiptHandle) -> Result<(), CloudError> {
        let idx = self.receipt_index(receipt)?;
        let msg = &mut self.messages[idx];
        debug_assert!(!msg.deleted && msg.current_receipt == Some(receipt));
        msg.invisible_until = None;
        msg.current_receipt = None;
        self.receipts.remove(&receipt.0);
        if !msg.queued {
            msg.queued = true;
            self.visible.push_back(idx);
        }
        Ok(())
    }

    /// Fire the visibility expiries that have come due: each expired message's
    /// receipt goes stale and the message is re-queued. Messages expiring in the
    /// same reconciliation batch re-queue in message-index order — the order a
    /// full scan over the message store would produce, which is the delivery
    /// schedule the campaign digests were frozen against.
    fn reconcile(&mut self, now: SimTime) {
        if self.expiries.peek().is_none_or(|&Reverse((t, _))| t > now) {
            return;
        }
        let mut due: Vec<(usize, SimTime)> = Vec::new();
        while let Some(&Reverse((t, idx))) = self.expiries.peek() {
            if t > now {
                break;
            }
            self.expiries.pop();
            due.push((idx, t));
        }
        // Index order, then schedule order within an index (only the entry
        // matching the live lease validates; the rest are stranded).
        due.sort_unstable_by_key(|&(idx, t)| (idx, t));
        for (idx, t) in due {
            let msg = &mut self.messages[idx];
            if msg.deleted || msg.invisible_until != Some(t) {
                continue; // stranded entry: superseded lease or finished message
            }
            // Expired: receipt becomes stale, message is visible again.
            msg.invisible_until = None;
            if let Some(r) = msg.current_receipt.take() {
                self.receipts.remove(&r.0);
            }
            if !msg.queued {
                msg.queued = true;
                self.visible.push_back(idx);
            }
        }
    }
}
#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn queue() -> SqsQueue<String> {
        SqsQueue::new(SimDuration::from_secs(30.0))
    }

    #[test]
    fn fifo_delivery_and_delete() {
        let mut q = queue();
        q.send("a".into());
        q.send("b".into());
        let (m1, r1, c1) = q.receive(t(0.0)).unwrap();
        assert_eq!((m1.as_str(), c1), ("a", 1));
        let (m2, _, _) = q.receive(t(0.0)).unwrap();
        assert_eq!(m2, "b");
        assert!(q.receive(t(0.0)).is_none(), "both in flight");
        q.delete(r1).unwrap();
        assert_eq!(q.pending_count(), 1);
    }

    #[test]
    fn visibility_timeout_redelivers() {
        let mut q = queue();
        q.send("a".into());
        let (_, r, c) = q.receive(t(0.0)).unwrap();
        assert_eq!(c, 1);
        // Before expiry: invisible.
        assert!(q.receive(t(29.0)).is_none());
        // After expiry: redelivered with bumped count, old receipt stale.
        let (_, _, c2) = q.receive(t(31.0)).unwrap();
        assert_eq!(c2, 2);
        assert!(q.delete(r).is_err(), "stale receipt must not delete");
        assert_eq!(q.pending_count(), 1);
    }

    #[test]
    fn delete_before_timeout_wins() {
        let mut q = queue();
        q.send("a".into());
        let (_, r, _) = q.receive(t(0.0)).unwrap();
        q.delete(r).unwrap();
        assert!(q.receive(t(100.0)).is_none());
        assert_eq!(q.pending_count(), 0);
        assert!(q.delete(r).is_err(), "double delete rejected");
    }

    #[test]
    fn change_visibility_extends_the_lease() {
        let mut q = queue();
        q.send("a".into());
        let (_, r, _) = q.receive(t(0.0)).unwrap();
        q.change_visibility(r, t(20.0), SimDuration::from_secs(100.0)).unwrap();
        assert!(q.receive(t(60.0)).is_none(), "lease extended to t=120");
        let (_, _, c) = q.receive(t(121.0)).unwrap();
        assert_eq!(c, 2);
    }

    #[test]
    fn counts_reflect_states() {
        let mut q = queue();
        for i in 0..5 {
            q.send(format!("m{i}"));
        }
        assert_eq!(q.visible_count(t(0.0)), 5);
        let (_, r, _) = q.receive(t(0.0)).unwrap();
        let _ = q.receive(t(0.0)).unwrap();
        assert_eq!(q.visible_count(t(0.0)), 3);
        assert_eq!(q.in_flight_count(t(0.0)), 2);
        assert_eq!(q.pending_count(), 5);
        q.delete(r).unwrap();
        assert_eq!(q.pending_count(), 4);
        // After timeout the undeleted in-flight message returns.
        assert_eq!(q.visible_count(t(31.0)), 4);
        assert_eq!(q.in_flight_count(t(31.0)), 0);
    }

    #[test]
    fn empty_queue_returns_none() {
        let mut q = queue();
        assert!(q.receive(t(0.0)).is_none());
        assert_eq!(q.visible_count(t(0.0)), 0);
    }

    #[test]
    fn dead_letter_after_max_receive_count() {
        let mut q: SqsQueue<String> =
            SqsQueue::new(SimDuration::from_secs(10.0)).with_max_receive_count(2);
        q.send("poison".into());
        // Two deliveries allowed; never deleted.
        let (_, _, c1) = q.receive(t(0.0)).unwrap();
        assert_eq!(c1, 1);
        let (_, _, c2) = q.receive(t(11.0)).unwrap();
        assert_eq!(c2, 2);
        // Third delivery attempt dead-letters instead.
        assert!(q.receive(t(22.0)).is_none());
        assert_eq!(q.dead_letters(), &["poison".to_string()]);
        assert_eq!(q.pending_count(), 0, "dead-lettered messages are no longer pending");
        // And it never comes back.
        assert!(q.receive(t(100.0)).is_none());
        assert_eq!(q.dead_letter_count(), 1);
    }

    #[test]
    fn delete_within_allowance_avoids_the_dlq() {
        let mut q: SqsQueue<String> =
            SqsQueue::new(SimDuration::from_secs(10.0)).with_max_receive_count(2);
        q.send("ok".into());
        let _ = q.receive(t(0.0)).unwrap();
        let (_, r2, _) = q.receive(t(11.0)).unwrap();
        q.delete(r2).unwrap();
        assert!(q.receive(t(100.0)).is_none());
        assert_eq!(q.dead_letter_count(), 0);
    }

    #[test]
    fn queue_wait_spans_send_to_first_receive_only() {
        let mut q = queue();
        q.send_at("a".into(), t(2.0));
        let (_, r1, _) = q.receive(t(7.5)).unwrap();
        assert_eq!(q.queue_wait(r1), Some(SimDuration::from_secs(5.5)));
        // Redelivery after timeout: wait still measures to the *first* receive.
        let (_, r2, c2) = q.receive(t(40.0)).unwrap();
        assert_eq!(c2, 2);
        assert_eq!(q.queue_wait(r2), Some(SimDuration::from_secs(5.5)));
        assert_eq!(q.queue_wait(r1), None, "stale receipt has no wait");
        // Plain `send` stamps t = 0.
        q.send("b".into());
        let (_, r3, _) = q.receive(t(41.0)).unwrap();
        assert_eq!(q.queue_wait(r3), Some(SimDuration::from_secs(41.0)));
    }

    #[test]
    fn force_visible_models_duplicate_delivery() {
        let mut q = queue();
        q.send("a".into());
        let (_, r1, c1) = q.receive(t(0.0)).unwrap();
        assert_eq!(c1, 1);
        q.force_visible(r1).unwrap();
        // Duplicate delivery while the first consumer still works on it.
        let (_, r2, c2) = q.receive(t(1.0)).unwrap();
        assert_eq!(c2, 2);
        // First receipt is now stale; second consumer's delete wins.
        assert!(q.delete(r1).is_err());
        q.delete(r2).unwrap();
        assert_eq!(q.pending_count(), 0);
    }

    #[test]
    fn release_hands_the_message_back_and_invalidates_the_receipt() {
        let mut q = queue();
        q.send("a".into());
        let (_, r, c) = q.receive(t(0.0)).unwrap();
        assert_eq!(c, 1);
        q.release(r).unwrap();
        // The worker gave the message up: its receipt is dead.
        assert!(q.delete(r).is_err(), "released receipt is stale");
        assert!(q.change_visibility(r, t(1.0), SimDuration::from_secs(9.0)).is_err());
        assert!(q.release(r).is_err(), "double release rejected");
        // Immediately redeliverable — no waiting out the visibility timeout.
        let (_, r2, c2) = q.receive(t(1.0)).unwrap();
        assert_eq!(c2, 2);
        q.delete(r2).unwrap();
        assert_eq!(q.pending_count(), 0);
    }

    #[test]
    fn release_respects_the_dead_letter_allowance() {
        // A released message still counts its deliveries: draining workers do
        // not grant a poison message extra lives.
        let mut q: SqsQueue<String> =
            SqsQueue::new(SimDuration::from_secs(10.0)).with_max_receive_count(2);
        q.send("p".into());
        let (_, r1, _) = q.receive(t(0.0)).unwrap();
        q.release(r1).unwrap();
        let (_, r2, c2) = q.receive(t(1.0)).unwrap();
        assert_eq!(c2, 2);
        q.release(r2).unwrap();
        assert!(q.receive(t(2.0)).is_none(), "third delivery dead-letters");
        assert_eq!(q.dead_letter_count(), 1);
    }

    #[test]
    fn release_while_queued_drops_and_requeues_via_expiry() {
        // force_visible puts the message back in the deque while its consumer
        // still holds the receipt; a lease extension then re-hides the *queued*
        // message. The delivery attempt must skip it and the extended lease's
        // expiry must resurface it.
        let mut q = queue();
        q.send("a".into());
        let (_, r, _) = q.receive(t(0.0)).unwrap();
        q.force_visible(r).unwrap();
        q.change_visibility(r, t(5.0), SimDuration::from_secs(50.0)).unwrap();
        assert!(q.receive(t(6.0)).is_none(), "re-hidden while queued");
        assert_eq!(q.pending_count(), 1);
        let (_, _, c) = q.receive(t(56.0)).unwrap();
        assert_eq!(c, 2, "extended lease expired, message redelivered");
    }

    #[test]
    fn next_visible_at_tracks_the_earliest_live_lease() {
        let mut q = queue();
        assert_eq!(q.next_visible_at(), None);
        q.send("a".into());
        q.send("b".into());
        assert_eq!(q.next_visible_at(), None, "visible messages have no expiry");
        let (_, ra, _) = q.receive(t(0.0)).unwrap();
        let (_, rb, _) = q.receive(t(2.0)).unwrap();
        assert_eq!(q.next_visible_at(), Some(t(30.0)));
        // Extending the earlier lease strands its entry; the next live one wins.
        q.change_visibility(ra, t(3.0), SimDuration::from_secs(100.0)).unwrap();
        assert_eq!(q.next_visible_at(), Some(t(32.0)));
        // Deleting the other leaves only the extended lease.
        q.delete(rb).unwrap();
        assert_eq!(q.next_visible_at(), Some(t(103.0)));
    }

    #[test]
    fn many_cycles_never_lose_or_duplicate_live_messages() {
        // Property-style: random receive/delete/timeout interleavings keep
        // pending = sent - deleted.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        let mut q: SqsQueue<u32> = SqsQueue::new(SimDuration::from_secs(10.0));
        let mut now = 0.0f64;
        let mut deleted = 0usize;
        for i in 0..200u32 {
            q.send(i);
        }
        let mut receipts: Vec<ReceiptHandle> = Vec::new();
        for _ in 0..2000 {
            now += rng.gen_range(0.1..3.0);
            match rng.gen_range(0..3) {
                0 => {
                    if let Some((_, r, _)) = q.receive(t(now)) {
                        receipts.push(r);
                    }
                }
                1 => {
                    if !receipts.is_empty() {
                        let r = receipts.swap_remove(rng.gen_range(0..receipts.len()));
                        if q.delete(r).is_ok() {
                            deleted += 1;
                        }
                    }
                }
                _ => { /* just let time pass */ }
            }
        }
        assert_eq!(q.pending_count(), 200 - deleted);
    }
}
