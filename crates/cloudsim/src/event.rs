//! Generic discrete-event queue.
//!
//! A binary heap of `(time, sequence, payload)`; the sequence number breaks ties
//! FIFO, making simulations fully deterministic. The orchestration layer defines its
//! own payload enum and drives the loop with [`EventQueue::pop`].

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A deterministic time-ordered event queue.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
}

#[derive(Debug)]
struct Entry<E> {
    key: Reverse<(SimTime, u64)>,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0, now: SimTime::ZERO }
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at zero.
    pub fn new() -> EventQueue<E> {
        EventQueue::default()
    }

    /// Current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `payload` at absolute time `at`.
    ///
    /// Panics when scheduling in the past — a simulation bug that must not be
    /// silently reordered.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        assert!(at >= self.now, "scheduling into the past: {at:?} < {:?}", self.now);
        self.heap.push(Entry { key: Reverse((at, self.seq)), payload });
        self.seq += 1;
    }

    /// Schedule `payload` `delay` after now.
    pub fn schedule_in(&mut self, delay: crate::time::SimDuration, payload: E) {
        self.schedule(self.now + delay, payload);
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        let Reverse((at, _)) = entry.key;
        debug_assert!(at >= self.now);
        self.now = at;
        Some((at, entry.payload))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.key.0 .0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3.0), "c");
        q.schedule(SimTime::from_secs(1.0), "a");
        q.schedule(SimTime::from_secs(2.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, ["a", "b", "c"]);
        assert_eq!(q.now(), SimTime::from_secs(3.0));
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5.0);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops_and_schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10.0), "x");
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(10.0));
        q.schedule_in(SimDuration::from_secs(5.0), "y");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(15.0));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10.0), "x");
        q.pop();
        q.schedule(SimTime::from_secs(5.0), "y");
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_secs(2.0), ());
        q.schedule(SimTime::from_secs(1.0), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1.0)));
    }
}
