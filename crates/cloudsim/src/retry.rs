//! Retry policy: capped exponential backoff with deterministic jitter.
//!
//! The paper's architecture leans on AWS SDK retry behavior for every S3/SQS call;
//! this module reproduces that machinery for the simulator. The policy itself is
//! pure arithmetic — callers supply a uniform `[0, 1)` jitter unit (drawn from the
//! fault injector's hash stream) so a chaos run replays bit-for-bit.

use crate::time::SimDuration;
use crate::CloudError;
use serde::{Deserialize, Serialize};

/// Capped exponential backoff: attempt `k` (1-based) sleeps
/// `min(base * multiplier^(k-1), cap) * (1 - jitter * u)` seconds, with `u` uniform
/// in `[0, 1)` supplied by the caller.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts, including the first (must be >= 1).
    pub max_attempts: u32,
    /// Backoff before the second attempt, seconds.
    pub base_delay_secs: f64,
    /// Backoff ceiling, seconds.
    pub max_delay_secs: f64,
    /// Geometric growth factor per attempt.
    pub multiplier: f64,
    /// Jitter fraction in `[0, 1]`: each sleep is scaled by `1 - jitter * u`.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    /// AWS-SDK-ish defaults: 4 attempts, 200 ms base, 10 s cap, doubling, 10% jitter.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay_secs: 0.2,
            max_delay_secs: 10.0,
            multiplier: 2.0,
            jitter: 0.1,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (one attempt, no backoff).
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_delay_secs: 0.0,
            max_delay_secs: 0.0,
            multiplier: 1.0,
            jitter: 0.0,
        }
    }

    /// Validate the policy parameters.
    pub fn validate(&self) -> Result<(), CloudError> {
        if self.max_attempts == 0 {
            return Err(CloudError::InvalidParams("retry max_attempts must be >= 1".into()));
        }
        if self.base_delay_secs < 0.0 || self.max_delay_secs < 0.0 {
            return Err(CloudError::InvalidParams("retry delays must be non-negative".into()));
        }
        if self.multiplier < 1.0 {
            return Err(CloudError::InvalidParams("retry multiplier must be >= 1".into()));
        }
        if !(0.0..=1.0).contains(&self.jitter) {
            return Err(CloudError::InvalidParams("retry jitter must be in [0, 1]".into()));
        }
        Ok(())
    }

    /// Backoff slept *after* failed attempt `attempt` (1-based), given a uniform
    /// jitter unit `u` in `[0, 1)`.
    pub fn backoff_after(&self, attempt: u32, u: f64) -> SimDuration {
        debug_assert!((0.0..1.0).contains(&u) || u == 0.0);
        let exp = self.base_delay_secs * self.multiplier.powi(attempt.saturating_sub(1) as i32);
        let capped = exp.min(self.max_delay_secs);
        SimDuration::from_secs(capped * (1.0 - self.jitter * u))
    }

    /// Histogram bucket bounds matched to this policy's backoff ladder: the exact
    /// geometric rungs `base * multiplier^k` capped at `max_delay_secs`. Jitter only
    /// shrinks a sleep, so every observed backoff lands at or below its rung —
    /// buckets line up with attempt numbers instead of smearing across generic
    /// latency buckets.
    pub fn backoff_histogram_bounds(&self) -> Vec<f64> {
        let base = self.base_delay_secs.max(1e-3);
        let cap = self.max_delay_secs.max(base);
        let mut bounds = vec![base];
        if self.multiplier > 1.0 {
            let mut b = base * self.multiplier;
            while b < cap && bounds.len() < 16 {
                bounds.push(b);
                b *= self.multiplier;
            }
        }
        if cap > *bounds.last().expect("bounds start non-empty") {
            bounds.push(cap);
        }
        bounds
    }

    /// Total backoff if every one of `max_attempts` attempts fails (zero jitter) —
    /// an upper bound used for lease sizing.
    pub fn worst_case_backoff(&self) -> SimDuration {
        let mut total = 0.0;
        for attempt in 1..self.max_attempts {
            total += self.backoff_after(attempt, 0.0).as_secs();
        }
        SimDuration::from_secs(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_geometrically_and_caps() {
        let p = RetryPolicy { jitter: 0.0, ..RetryPolicy::default() };
        assert!((p.backoff_after(1, 0.0).as_secs() - 0.2).abs() < 1e-12);
        assert!((p.backoff_after(2, 0.0).as_secs() - 0.4).abs() < 1e-12);
        assert!((p.backoff_after(3, 0.0).as_secs() - 0.8).abs() < 1e-12);
        // Far past the cap.
        assert!((p.backoff_after(20, 0.0).as_secs() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn jitter_shrinks_the_sleep_deterministically() {
        let p = RetryPolicy { jitter: 0.5, ..RetryPolicy::default() };
        let full = p.backoff_after(2, 0.0).as_secs();
        let jittered = p.backoff_after(2, 0.9999).as_secs();
        assert!(jittered < full);
        assert!(jittered > full * 0.5 - 1e-9, "jitter removes at most `jitter` fraction");
        assert_eq!(p.backoff_after(2, 0.25), p.backoff_after(2, 0.25));
    }

    #[test]
    fn worst_case_bounds_the_sum() {
        let p = RetryPolicy { jitter: 0.0, ..RetryPolicy::default() };
        let wc = p.worst_case_backoff().as_secs();
        assert!((wc - (0.2 + 0.4 + 0.8)).abs() < 1e-12);
        let none = RetryPolicy::none();
        assert_eq!(none.worst_case_backoff().as_secs(), 0.0);
    }

    #[test]
    fn histogram_bounds_follow_the_backoff_ladder() {
        let p = RetryPolicy::default();
        let bounds = p.backoff_histogram_bounds();
        // 0.2, 0.4, ..., up to the 10 s cap; strictly increasing.
        assert_eq!(bounds.first().copied(), Some(0.2));
        assert_eq!(bounds.last().copied(), Some(10.0));
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "{bounds:?}");
        // Degenerate policies still yield a valid (strictly increasing) set.
        let none = RetryPolicy::none().backoff_histogram_bounds();
        assert!(!none.is_empty());
        assert!(none.windows(2).all(|w| w[0] < w[1]), "{none:?}");
    }

    #[test]
    fn validation_rejects_nonsense() {
        assert!(RetryPolicy::default().validate().is_ok());
        assert!(RetryPolicy::none().validate().is_ok());
        let bad = RetryPolicy { max_attempts: 0, ..RetryPolicy::default() };
        assert!(bad.validate().is_err());
        let bad = RetryPolicy { multiplier: 0.5, ..RetryPolicy::default() };
        assert!(bad.validate().is_err());
        let bad = RetryPolicy { jitter: 1.5, ..RetryPolicy::default() };
        assert!(bad.validate().is_err());
        let bad = RetryPolicy { base_delay_secs: -1.0, ..RetryPolicy::default() };
        assert!(bad.validate().is_err());
    }
}
