//! Discrete-event cloud simulator.
//!
//! Models the AWS services the paper's architecture (Fig. 2) is built from, at the
//! level of detail its claims depend on:
//!
//! * [`time`] — simulated clock types ([`time::SimTime`], [`time::SimDuration`]).
//! * [`event`] — the generic discrete-event queue every simulation is driven by.
//! * [`instance`] — EC2 instance-type catalog (vCPU / memory / hourly price, incl.
//!   the paper's `r6a.4xlarge` testbed) and instance lifecycle.
//! * [`spot`] — spot pricing discount and a Poisson interruption process.
//! * [`faults`] — deterministic fault injection: seeded chaos plans for S3/SQS
//!   errors, duplicate deliveries, worker crashes, and spot bursts, replayable
//!   bit-for-bit.
//! * [`retry`] — capped exponential backoff with deterministic jitter (the AWS-SDK
//!   retry machinery the paper's architecture silently assumes).
//! * [`sqs`] — the work queue: visibility timeouts, at-least-once redelivery —
//!   exactly the property that makes the architecture resilient to spot reclaims.
//! * [`s3`] — the object store holding the pre-built index and pipeline results.
//! * [`asg`] — AutoScalingGroup sizing instances from queue backlog.
//! * [`cost`] — instance-seconds × price accounting (the "minimize cloud costs"
//!   goal the paper optimizes for).
//!
//! Nothing here sleeps or talks to a network: time advances only through the event
//! queue, so campaigns over thousands of accessions simulate in milliseconds.

pub mod asg;
pub mod cost;
pub mod devent;
pub mod error;
pub mod event;
pub mod faults;
pub mod instance;
pub mod retry;
pub mod s3;
pub mod spot;
pub mod sqs;
pub mod time;

pub use asg::{AutoScalingGroup, ScalingPolicy};
pub use cost::CostTracker;
pub use devent::{Kernel, KernelStats, TimerId};
pub use error::CloudError;
pub use event::EventQueue;
pub use faults::{FaultCounters, FaultEvent, FaultInjector, FaultOp, FaultPlan, SpotBurst};
pub use instance::{Instance, InstanceId, InstanceState, InstanceType, INSTANCE_CATALOG};
pub use retry::RetryPolicy;
pub use s3::ObjectStore;
pub use spot::{Reclaim, ReclaimSource, SpotMarket};
pub use sqs::SqsQueue;
pub use time::{SimDuration, SimTime};
