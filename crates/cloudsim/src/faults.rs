//! Deterministic fault injection for chaos campaigns.
//!
//! The paper's architecture (Fig. 2) gets its correctness from AWS failure
//! semantics: SQS redelivers what a dead worker never deleted, S3 calls are retried
//! by the SDK, and spot reclaims can strike any instance at any time. To *prove*
//! the at-least-once path rather than assume it, a [`FaultPlan`] describes which
//! operations misbehave and how often, and a [`FaultInjector`] turns that plan into
//! concrete fault decisions.
//!
//! Every decision is a pure hash of `(seed, instance_serial, op, counter)` — no
//! shared RNG stream — so two runs of the same plan produce identical fault
//! schedules even if unrelated code draws random numbers in between, and a single
//! instance's fault stream is independent of fleet size. That is what makes chaos
//! campaigns replayable bit-for-bit and failures bisectable.

use crate::retry::RetryPolicy;
use crate::time::{SimDuration, SimTime};
use crate::CloudError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;
use telemetry::{JsonValue, Recorder};

/// Operations that can fail transiently under a [`FaultPlan`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultOp {
    /// S3 GET (index manifest download, result fetch).
    S3Get,
    /// S3 PUT (result upload).
    S3Put,
    /// SQS ReceiveMessage.
    SqsReceive,
    /// SQS DeleteMessage.
    SqsDelete,
    /// SQS ChangeMessageVisibility (lease heartbeat).
    SqsExtend,
    /// Duplicate delivery: a received message stays visible (visibility violated).
    DuplicateDelivery,
    /// Worker process crash mid-pipeline.
    WorkerCrash,
    /// Checkpoint upload at an interruption notice (drain-time S3 PUT).
    CheckpointPut,
}

impl FaultOp {
    /// Stable snake_case name, used in telemetry events.
    pub fn name(self) -> &'static str {
        match self {
            FaultOp::S3Get => "s3_get",
            FaultOp::S3Put => "s3_put",
            FaultOp::SqsReceive => "sqs_receive",
            FaultOp::SqsDelete => "sqs_delete",
            FaultOp::SqsExtend => "sqs_extend",
            FaultOp::DuplicateDelivery => "duplicate_delivery",
            FaultOp::WorkerCrash => "worker_crash",
            FaultOp::CheckpointPut => "checkpoint_put",
        }
    }

    fn tag(self) -> u64 {
        match self {
            FaultOp::S3Get => 1,
            FaultOp::S3Put => 2,
            FaultOp::SqsReceive => 3,
            FaultOp::SqsDelete => 4,
            FaultOp::SqsExtend => 5,
            FaultOp::DuplicateDelivery => 6,
            FaultOp::WorkerCrash => 7,
            FaultOp::CheckpointPut => 8,
        }
    }
}

/// A window of elevated spot-interruption pressure (capacity crunch), layered on
/// top of [`crate::SpotMarket`]'s base Poisson process.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpotBurst {
    /// Window start, simulated seconds.
    pub start_secs: f64,
    /// Window length, seconds.
    pub duration_secs: f64,
    /// Extra interruption rate during the window, per instance-hour.
    pub rate_per_hour: f64,
}

/// Declarative description of a chaos campaign's faults.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed addressing the entire fault schedule.
    pub seed: u64,
    /// Probability an S3 GET attempt fails transiently.
    pub s3_get_fail: f64,
    /// Probability an S3 PUT attempt fails transiently.
    pub s3_put_fail: f64,
    /// Probability an SQS receive attempt fails transiently.
    pub sqs_receive_fail: f64,
    /// Probability an SQS delete attempt fails transiently.
    pub sqs_delete_fail: f64,
    /// Probability an SQS visibility-change attempt fails transiently.
    pub sqs_extend_fail: f64,
    /// Probability a successful receive is also duplicated (message stays visible).
    pub duplicate_delivery: f64,
    /// Probability a started job crashes partway through the pipeline.
    pub worker_crash_per_job: f64,
    /// Probability a drain-time checkpoint upload fails (progress is lost and
    /// the interrupted work restarts from zero, as without checkpointing).
    /// Only rolled when the campaign's recovery layer is enabled.
    pub checkpoint_write_fail: f64,
    /// Interruption-notice lead time, seconds before the reclaim (AWS delivers
    /// two minutes). Only consulted when the recovery layer is enabled; `0`
    /// means the notice and the reclaim land at the same instant (the notice
    /// still dispatches first).
    pub spot_notice_secs: f64,
    /// Windows of elevated spot-interruption pressure.
    pub spot_bursts: Vec<SpotBurst>,
}

impl Default for FaultPlan {
    /// No faults at all: the injector becomes a no-op.
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            s3_get_fail: 0.0,
            s3_put_fail: 0.0,
            sqs_receive_fail: 0.0,
            sqs_delete_fail: 0.0,
            sqs_extend_fail: 0.0,
            duplicate_delivery: 0.0,
            worker_crash_per_job: 0.0,
            checkpoint_write_fail: 0.0,
            spot_notice_secs: 120.0,
            spot_bursts: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// A moderately hostile plan for chaos tests: a few percent of everything.
    pub fn chaos(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            s3_get_fail: 0.05,
            s3_put_fail: 0.05,
            sqs_receive_fail: 0.05,
            sqs_delete_fail: 0.05,
            sqs_extend_fail: 0.05,
            duplicate_delivery: 0.10,
            worker_crash_per_job: 0.10,
            checkpoint_write_fail: 0.05,
            spot_notice_secs: 120.0,
            spot_bursts: Vec::new(),
        }
    }

    /// Validate probabilities and burst windows.
    pub fn validate(&self) -> Result<(), CloudError> {
        let probs = [
            self.s3_get_fail,
            self.s3_put_fail,
            self.sqs_receive_fail,
            self.sqs_delete_fail,
            self.sqs_extend_fail,
            self.duplicate_delivery,
            self.worker_crash_per_job,
            self.checkpoint_write_fail,
        ];
        if probs.iter().any(|p| !(0.0..=1.0).contains(p)) {
            return Err(CloudError::InvalidParams(
                "fault probabilities must be in [0, 1]".into(),
            ));
        }
        if !self.spot_notice_secs.is_finite() || self.spot_notice_secs < 0.0 {
            return Err(CloudError::InvalidParams(
                "spot_notice_secs must be finite and >= 0".into(),
            ));
        }
        for b in &self.spot_bursts {
            if b.start_secs < 0.0 || b.duration_secs <= 0.0 || b.rate_per_hour <= 0.0 {
                return Err(CloudError::InvalidParams(
                    "spot bursts need start >= 0, duration > 0, rate > 0".into(),
                ));
            }
        }
        Ok(())
    }

    fn probability(&self, op: FaultOp) -> f64 {
        match op {
            FaultOp::S3Get => self.s3_get_fail,
            FaultOp::S3Put => self.s3_put_fail,
            FaultOp::SqsReceive => self.sqs_receive_fail,
            FaultOp::SqsDelete => self.sqs_delete_fail,
            FaultOp::SqsExtend => self.sqs_extend_fail,
            FaultOp::DuplicateDelivery => self.duplicate_delivery,
            FaultOp::WorkerCrash => self.worker_crash_per_job,
            FaultOp::CheckpointPut => self.checkpoint_write_fail,
        }
    }
}

/// One injected fault, for the replayable event trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Instance the fault struck (launch serial).
    pub instance_serial: u64,
    /// Operation that failed.
    pub op: FaultOp,
    /// Per-(instance, op) attempt counter at the time of the fault.
    pub counter: u64,
}

/// Result of driving an operation through [`FaultInjector::with_retry`].
#[derive(Debug)]
pub struct Retried<T> {
    /// The final outcome (`Err` only when retries were exhausted or the underlying
    /// operation failed for a non-injected reason).
    pub outcome: Result<T, CloudError>,
    /// Attempts consumed (1 = first try succeeded).
    pub attempts: u32,
    /// Total backoff slept between attempts.
    pub backoff: SimDuration,
}

/// SplitMix64 finalizer: a high-quality 64-bit mix.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform `[0, 1)` from a hash of the address tuple.
fn unit(seed: u64, serial: u64, stream: u64, counter: u64) -> f64 {
    let h = mix64(seed ^ mix64(serial ^ mix64(stream ^ mix64(counter))));
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Tallies of injected faults and retry activity over a chaos campaign.
///
/// Filled in by [`FaultInjector`] and quoted by campaign reports so a chaos
/// run documents exactly how much adversity it survived.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultCounters {
    /// Transient S3 GET failures injected.
    pub s3_get_faults: u64,
    /// Transient S3 PUT failures injected.
    pub s3_put_faults: u64,
    /// Transient SQS receive failures injected.
    pub sqs_receive_faults: u64,
    /// Transient SQS delete failures injected.
    pub sqs_delete_faults: u64,
    /// Transient SQS visibility-change failures injected.
    pub sqs_extend_faults: u64,
    /// Duplicate deliveries injected (message left visible after receive).
    pub duplicate_deliveries: u64,
    /// Worker crashes injected mid-pipeline.
    pub worker_crashes: u64,
    /// Drain-time checkpoint uploads that failed (progress lost at a notice).
    pub checkpoint_put_faults: u64,
    /// Failed attempts that consumed a retry.
    pub retry_attempts: u64,
    /// Operations that failed every attempt of their retry policy.
    pub retries_exhausted: u64,
    /// Total simulated seconds slept in retry backoff.
    pub retry_backoff_secs: f64,
}

impl FaultCounters {
    /// Record one injected fault of kind `op`.
    pub fn count(&mut self, op: FaultOp) {
        match op {
            FaultOp::S3Get => self.s3_get_faults += 1,
            FaultOp::S3Put => self.s3_put_faults += 1,
            FaultOp::SqsReceive => self.sqs_receive_faults += 1,
            FaultOp::SqsDelete => self.sqs_delete_faults += 1,
            FaultOp::SqsExtend => self.sqs_extend_faults += 1,
            FaultOp::DuplicateDelivery => self.duplicate_deliveries += 1,
            FaultOp::WorkerCrash => self.worker_crashes += 1,
            FaultOp::CheckpointPut => self.checkpoint_put_faults += 1,
        }
    }

    /// Total injected faults across all operation kinds.
    pub fn total_faults(&self) -> u64 {
        self.s3_get_faults
            + self.s3_put_faults
            + self.sqs_receive_faults
            + self.sqs_delete_faults
            + self.sqs_extend_faults
            + self.duplicate_deliveries
            + self.worker_crashes
            + self.checkpoint_put_faults
    }
}

/// Stateful view over a [`FaultPlan`]: tracks per-`(instance, op)` attempt counters,
/// tallies what it injected, and records the fault trace.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    counters: HashMap<(u64, FaultOp), u64>,
    side_counters: HashMap<(u64, u64), u64>,
    tallies: FaultCounters,
    trace: Vec<FaultEvent>,
    /// Telemetry sink, when attached. Injection decisions never depend on it.
    recorder: Option<Arc<Recorder>>,
    /// Current sim time for emitted events (advanced by the orchestrator loop).
    now_secs: f64,
}

impl FaultInjector {
    /// An injector for `plan`.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            plan,
            counters: HashMap::new(),
            side_counters: HashMap::new(),
            tallies: FaultCounters::default(),
            trace: Vec::new(),
            recorder: None,
            now_secs: 0.0,
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Attach a telemetry recorder: injected faults, retries, and exhaustions are
    /// emitted as structured events from now on.
    pub fn attach_recorder(&mut self, recorder: Arc<Recorder>) {
        self.recorder = Some(recorder);
    }

    /// Advance the sim clock used to timestamp emitted events.
    pub fn set_now(&mut self, now_secs: f64) {
        self.now_secs = now_secs;
    }

    /// Emit a structured event at the injector's current sim time (no-op without an
    /// attached recorder). Service models (S3, SQS wrappers) reuse this so their
    /// events share the injector's clock.
    pub fn emit(&self, kind: &'static str, fields: Vec<(&'static str, JsonValue)>) {
        if let Some(rec) = &self.recorder {
            rec.event(self.now_secs, kind, fields);
        }
    }

    /// Injection tallies so far.
    pub fn tallies(&self) -> &FaultCounters {
        &self.tallies
    }

    /// The ordered trace of injected faults.
    pub fn trace(&self) -> &[FaultEvent] {
        &self.trace
    }

    /// Advance the `(serial, op)` counter and return its pre-increment value.
    fn bump(&mut self, serial: u64, op: FaultOp) -> u64 {
        let c = self.counters.entry((serial, op)).or_insert(0);
        let v = *c;
        *c += 1;
        v
    }

    /// Roll one fault decision for `op` on instance `serial`. Deterministic in
    /// `(plan.seed, serial, op, attempt counter)`.
    pub fn roll(&mut self, serial: u64, op: FaultOp) -> bool {
        let p = self.plan.probability(op);
        let counter = self.bump(serial, op);
        if p <= 0.0 {
            return false;
        }
        let hit = unit(self.plan.seed, serial, op.tag(), counter) < p;
        if hit {
            self.tallies.count(op);
            self.trace.push(FaultEvent { instance_serial: serial, op, counter });
            if let Some(rec) = &self.recorder {
                rec.event(
                    self.now_secs,
                    "fault_injected",
                    vec![
                        ("op", JsonValue::from(op.name())),
                        ("instance", JsonValue::from(serial)),
                        ("counter", JsonValue::from(counter)),
                    ],
                );
                rec.counter_add("faults_injected", 1);
            }
        }
        hit
    }

    /// A deterministic uniform `[0, 1)` draw on a side stream (jitter, crash
    /// offsets) that does not disturb the fault streams.
    pub fn side_roll(&mut self, serial: u64, salt: u64) -> f64 {
        let c = self.side_counters.entry((serial, salt)).or_insert(0);
        let counter = *c;
        *c += 1;
        unit(self.plan.seed ^ 0xA5A5_A5A5_A5A5_A5A5, serial, salt, counter)
    }

    /// Drive `f` under `policy`, injecting transient `op` faults before each
    /// attempt. Backoff accrues between failed attempts with deterministic jitter.
    /// Non-injected errors from `f` (semantic failures like a stale receipt) are
    /// returned immediately — retrying cannot fix them.
    pub fn with_retry<T>(
        &mut self,
        serial: u64,
        op: FaultOp,
        policy: &RetryPolicy,
        mut f: impl FnMut() -> Result<T, CloudError>,
    ) -> Retried<T> {
        let mut backoff = SimDuration::ZERO;
        for attempt in 1..=policy.max_attempts {
            if self.roll(serial, op) {
                self.tallies.retry_attempts += 1;
                if attempt == policy.max_attempts {
                    self.tallies.retries_exhausted += 1;
                    self.emit(
                        "retries_exhausted",
                        vec![
                            ("op", JsonValue::from(op.name())),
                            ("instance", JsonValue::from(serial)),
                            ("attempts", JsonValue::from(attempt)),
                        ],
                    );
                    return Retried {
                        outcome: Err(CloudError::RetriesExhausted(format!(
                            "{op:?} on instance {serial} after {attempt} attempts"
                        ))),
                        attempts: attempt,
                        backoff,
                    };
                }
                let u = self.side_roll(serial, 0xB0FF ^ op.tag());
                let sleep = policy.backoff_after(attempt, u);
                backoff += sleep;
                self.tallies.retry_backoff_secs += sleep.as_secs();
                if let Some(rec) = &self.recorder {
                    rec.event(
                        self.now_secs,
                        "retry",
                        vec![
                            ("op", JsonValue::from(op.name())),
                            ("instance", JsonValue::from(serial)),
                            ("attempt", JsonValue::from(attempt)),
                            ("backoff_secs", JsonValue::from(sleep.as_secs())),
                        ],
                    );
                    rec.observe(
                        "retry_backoff_secs",
                        &policy.backoff_histogram_bounds(),
                        sleep.as_secs(),
                    );
                }
                continue;
            }
            return Retried { outcome: f(), attempts: attempt, backoff };
        }
        unreachable!("max_attempts >= 1 is enforced by RetryPolicy::validate")
    }

    /// The unified reclaim schedule for an instance launched at `launched_at`:
    /// the market's base Poisson interruption and the earliest fault-plan burst
    /// interruption, sampled through exactly the draws the two legacy call
    /// sites made, in a fixed order (market first, then burst). Interruption
    /// notices are derived from this single schedule — every reclaim, whatever
    /// its source, gets a notice `plan.spot_notice_secs` ahead (clamped to the
    /// launch instant), so market and burst reclaims can never diverge in
    /// notice behavior.
    pub fn reclaim_schedule(
        &self,
        market: &crate::SpotMarket,
        launched_at: SimTime,
        serial: u64,
    ) -> Vec<crate::spot::Reclaim> {
        use crate::spot::{Reclaim, ReclaimSource};
        let mut out = Vec::new();
        if let Some(at) = market.sample_interruption(launched_at, serial) {
            out.push(Reclaim { at, source: ReclaimSource::Market });
        }
        if let Some(at) = self.burst_interruption(launched_at, serial) {
            out.push(Reclaim { at, source: ReclaimSource::Burst });
        }
        out
    }

    /// The notice instant for a reclaim at `reclaim_at`: `spot_notice_secs`
    /// ahead of the reclaim, clamped so a notice can never precede the launch.
    pub fn notice_at(&self, launched_at: SimTime, reclaim_at: SimTime) -> SimTime {
        let at = (reclaim_at.as_secs() - self.plan.spot_notice_secs).max(launched_at.as_secs());
        SimTime::from_secs(at)
    }

    /// Earliest burst-layer interruption for an instance launched at `launched_at`,
    /// if any burst window catches it. Deterministic per `(seed, serial, burst)`;
    /// exponential waiting time within each window (memoryless, so sampling from
    /// `max(window start, launch)` is exact).
    pub fn burst_interruption(&self, launched_at: SimTime, serial: u64) -> Option<SimTime> {
        let mut earliest: Option<SimTime> = None;
        for (i, b) in self.plan.spot_bursts.iter().enumerate() {
            let end = b.start_secs + b.duration_secs;
            if launched_at.as_secs() >= end {
                continue;
            }
            let from = launched_at.as_secs().max(b.start_secs);
            let stream = serial.wrapping_mul(1 << 20).wrapping_add(i as u64);
            let wait_hours =
                crate::spot::exponential_hours(self.plan.seed ^ 0x5B5B_5B5B, stream, b.rate_per_hour);
            let t = from + wait_hours * 3600.0;
            if t < end {
                let t = SimTime::from_secs(t);
                earliest = Some(match earliest {
                    Some(e) if e <= t => e,
                    _ => t,
                });
            }
        }
        earliest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> FaultPlan {
        FaultPlan { s3_get_fail: 0.5, sqs_delete_fail: 1.0, ..FaultPlan::default() }
    }

    #[test]
    fn rolls_replay_bit_for_bit() {
        let mut a = FaultInjector::new(FaultPlan::chaos(9));
        let mut b = FaultInjector::new(FaultPlan::chaos(9));
        for serial in 0..8 {
            for _ in 0..50 {
                assert_eq!(a.roll(serial, FaultOp::S3Get), b.roll(serial, FaultOp::S3Get));
                assert_eq!(
                    a.roll(serial, FaultOp::SqsReceive),
                    b.roll(serial, FaultOp::SqsReceive)
                );
            }
        }
        assert_eq!(a.trace(), b.trace());
        assert_eq!(a.tallies(), b.tallies());
    }

    #[test]
    fn different_seeds_give_different_traces() {
        let mut a = FaultInjector::new(FaultPlan::chaos(1));
        let mut b = FaultInjector::new(FaultPlan::chaos(2));
        for serial in 0..4 {
            for _ in 0..100 {
                a.roll(serial, FaultOp::S3Get);
                b.roll(serial, FaultOp::S3Get);
            }
        }
        assert_ne!(a.trace(), b.trace());
    }

    #[test]
    fn instance_streams_are_independent_of_interleaving() {
        // Serial 5's decisions must not depend on how often serial 6 rolled.
        let mut a = FaultInjector::new(plan());
        let mut b = FaultInjector::new(plan());
        let mut seq_a = Vec::new();
        for _ in 0..40 {
            seq_a.push(a.roll(5, FaultOp::S3Get));
        }
        let mut seq_b = Vec::new();
        for i in 0..40 {
            if i % 3 == 0 {
                b.roll(6, FaultOp::S3Get);
                b.roll(6, FaultOp::SqsReceive);
            }
            seq_b.push(b.roll(5, FaultOp::S3Get));
        }
        assert_eq!(seq_a, seq_b);
    }

    #[test]
    fn zero_probability_never_fires_and_one_always_fires() {
        let mut inj = FaultInjector::new(plan());
        for _ in 0..100 {
            assert!(!inj.roll(1, FaultOp::S3Put), "p=0 must never fire");
            assert!(inj.roll(1, FaultOp::SqsDelete), "p=1 must always fire");
        }
        assert_eq!(inj.tallies().sqs_delete_faults, 100);
        assert_eq!(inj.tallies().s3_put_faults, 0);
    }

    #[test]
    fn fault_rate_tracks_probability() {
        let mut inj = FaultInjector::new(plan());
        let n = 4000;
        let mut hits = 0;
        for serial in 0..4 {
            for _ in 0..n / 4 {
                if inj.roll(serial, FaultOp::S3Get) {
                    hits += 1;
                }
            }
        }
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.5).abs() < 0.05, "rate {rate} for p=0.5");
    }

    #[test]
    fn with_retry_recovers_from_transients() {
        // p = 0.5 and 4 attempts: most calls succeed eventually; backoff accrues
        // exactly when attempts were consumed.
        let mut inj = FaultInjector::new(plan());
        let policy = RetryPolicy::default();
        let mut ok = 0;
        let mut exhausted = 0;
        for i in 0..200 {
            let r = inj.with_retry(i % 8, FaultOp::S3Get, &policy, || Ok(42));
            match r.outcome {
                Ok(v) => {
                    assert_eq!(v, 42);
                    ok += 1;
                    assert_eq!(r.backoff > SimDuration::ZERO, r.attempts > 1);
                }
                Err(CloudError::RetriesExhausted(_)) => {
                    exhausted += 1;
                    assert_eq!(r.attempts, policy.max_attempts);
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(ok > 150, "most calls should survive retries, got {ok}");
        assert!(exhausted > 0, "p=0.5^4 over 200 calls should exhaust some");
        assert_eq!(inj.tallies().retries_exhausted, exhausted);
    }

    #[test]
    fn with_retry_passes_semantic_errors_through() {
        let mut inj = FaultInjector::new(FaultPlan::default());
        let r: Retried<()> = inj.with_retry(0, FaultOp::SqsDelete, &RetryPolicy::default(), || {
            Err(CloudError::StaleReceipt("r".into()))
        });
        assert_eq!(r.attempts, 1, "semantic errors are not retried");
        assert!(matches!(r.outcome, Err(CloudError::StaleReceipt(_))));
    }

    #[test]
    fn attached_recorder_sees_faults_and_retries() {
        let mut inj = FaultInjector::new(plan());
        let rec = Arc::new(Recorder::new());
        inj.attach_recorder(Arc::clone(&rec));
        inj.set_now(42.0);
        // p = 1.0 on SqsDelete: every attempt faults, so the policy exhausts.
        let r: Retried<()> =
            inj.with_retry(3, FaultOp::SqsDelete, &RetryPolicy::default(), || Ok(()));
        assert!(matches!(r.outcome, Err(CloudError::RetriesExhausted(_))));
        let log = rec.events_ndjson();
        assert!(log.contains("\"kind\":\"fault_injected\",\"op\":\"sqs_delete\""), "{log}");
        assert!(log.contains("\"kind\":\"retry\""), "{log}");
        assert!(log.contains("\"kind\":\"retries_exhausted\""), "{log}");
        assert!(log.lines().all(|l| l.starts_with("{\"t\":42,")), "events use set_now time");
        assert_eq!(rec.metrics().counter("faults_injected"), 4);
        assert_eq!(rec.metrics().histogram("retry_backoff_secs").unwrap().count(), 3);
        // Decisions are identical with and without a recorder attached.
        let mut bare = FaultInjector::new(plan());
        let b: Retried<()> =
            bare.with_retry(3, FaultOp::SqsDelete, &RetryPolicy::default(), || Ok(()));
        assert_eq!(r.attempts, b.attempts);
        assert_eq!(r.backoff, b.backoff);
    }

    #[test]
    fn burst_interruptions_stay_in_window_and_replay() {
        let plan = FaultPlan {
            spot_bursts: vec![SpotBurst {
                start_secs: 1000.0,
                duration_secs: 600.0,
                rate_per_hour: 60.0,
            }],
            ..FaultPlan::default()
        };
        let inj = FaultInjector::new(plan.clone());
        let inj2 = FaultInjector::new(plan);
        let mut hit = 0;
        for serial in 0..200 {
            let t = inj.burst_interruption(SimTime::ZERO, serial);
            assert_eq!(t, inj2.burst_interruption(SimTime::ZERO, serial));
            if let Some(t) = t {
                hit += 1;
                assert!((1000.0..1600.0).contains(&t.as_secs()), "t {t}");
            }
        }
        // λ=60/h over a 10-minute window: ~1 - e^-10 of instances hit.
        assert!(hit > 180, "burst should catch nearly every instance, hit {hit}");
        // Instances launched after the window are safe.
        assert!(inj.burst_interruption(SimTime::from_secs(1601.0), 3).is_none());
    }

    #[test]
    fn plan_validation() {
        assert!(FaultPlan::default().validate().is_ok());
        assert!(FaultPlan::chaos(1).validate().is_ok());
        let bad = FaultPlan { s3_get_fail: 1.5, ..FaultPlan::default() };
        assert!(bad.validate().is_err());
        let bad = FaultPlan {
            spot_bursts: vec![SpotBurst { start_secs: 0.0, duration_secs: 0.0, rate_per_hour: 1.0 }],
            ..FaultPlan::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn recovery_knob_validation() {
        let bad = FaultPlan { checkpoint_write_fail: 1.01, ..FaultPlan::default() };
        assert!(bad.validate().is_err());
        let bad = FaultPlan { checkpoint_write_fail: -0.1, ..FaultPlan::default() };
        assert!(bad.validate().is_err());
        let bad = FaultPlan { spot_notice_secs: -1.0, ..FaultPlan::default() };
        assert!(bad.validate().is_err());
        let bad = FaultPlan { spot_notice_secs: f64::NAN, ..FaultPlan::default() };
        assert!(bad.validate().is_err());
        let bad = FaultPlan { spot_notice_secs: f64::INFINITY, ..FaultPlan::default() };
        assert!(bad.validate().is_err());
        let ok = FaultPlan { spot_notice_secs: 0.0, checkpoint_write_fail: 1.0, ..FaultPlan::default() };
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn reclaim_schedule_matches_the_legacy_call_sites() {
        use crate::spot::ReclaimSource;
        use crate::SpotMarket;
        // The unified schedule must reproduce the exact draws (and order) the
        // kernel used to make directly: market sample first, then burst sample.
        let plan = FaultPlan {
            spot_bursts: vec![SpotBurst {
                start_secs: 0.0,
                duration_secs: 4000.0,
                rate_per_hour: 30.0,
            }],
            ..FaultPlan::chaos(13)
        };
        let market = SpotMarket { interruptions_per_hour: 2.0, ..SpotMarket::default() };
        let inj = FaultInjector::new(plan);
        for serial in 1..40 {
            let launched = SimTime::from_secs(serial as f64 * 11.0);
            let schedule = inj.reclaim_schedule(&market, launched, serial);
            let legacy: Vec<(SimTime, ReclaimSource)> = market
                .sample_interruption(launched, serial)
                .map(|t| (t, ReclaimSource::Market))
                .into_iter()
                .chain(
                    inj.burst_interruption(launched, serial)
                        .map(|t| (t, ReclaimSource::Burst)),
                )
                .collect();
            let got: Vec<(SimTime, ReclaimSource)> =
                schedule.iter().map(|r| (r.at, r.source)).collect();
            assert_eq!(got, legacy, "serial {serial}");
        }
        // No market rate, no bursts → empty schedule.
        let quiet = FaultInjector::new(FaultPlan::default());
        assert!(quiet
            .reclaim_schedule(&SpotMarket::default(), SimTime::ZERO, 1)
            .is_empty());
    }

    #[test]
    fn notice_precedes_reclaim_by_the_lead_clamped_to_launch() {
        let inj = FaultInjector::new(FaultPlan::default()); // 120 s lead
        let launched = SimTime::from_secs(1000.0);
        // Far-out reclaim: notice lands exactly 120 s ahead.
        let n = inj.notice_at(launched, SimTime::from_secs(5000.0));
        assert_eq!(n, SimTime::from_secs(4880.0));
        // Reclaim sooner than the lead: notice clamps to the launch instant.
        let n = inj.notice_at(launched, SimTime::from_secs(1060.0));
        assert_eq!(n, launched);
        // Zero lead: notice and reclaim coincide.
        let inj = FaultInjector::new(FaultPlan { spot_notice_secs: 0.0, ..FaultPlan::default() });
        let n = inj.notice_at(launched, SimTime::from_secs(2000.0));
        assert_eq!(n, SimTime::from_secs(2000.0));
    }
}
