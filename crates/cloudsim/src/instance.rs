//! EC2 instance types and lifecycle.
//!
//! The catalog covers the memory-optimized `r` family the paper runs on (its testbed
//! is `r6a.4xlarge`: 16 vCPU / 128 GiB) plus general-purpose alternatives, with
//! eu-central-1-ballpark on-demand prices. Right-sizing (§III-A: "a much smaller
//! index allows us to use smaller and cheaper instances") selects from this catalog
//! by memory fit.

use crate::time::SimTime;
use crate::CloudError;
use serde::{Deserialize, Serialize};

/// An EC2 instance type with its resources and price.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct InstanceType {
    /// API name, e.g. `"r6a.4xlarge"`.
    pub name: &'static str,
    /// vCPU count.
    pub vcpus: u32,
    /// Memory in GiB.
    pub memory_gib: f64,
    /// On-demand price in USD/hour.
    pub on_demand_hourly_usd: f64,
}

impl InstanceType {
    /// Look up a type by name in the built-in catalog.
    pub fn by_name(name: &str) -> Result<&'static InstanceType, CloudError> {
        INSTANCE_CATALOG
            .iter()
            .find(|t| t.name == name)
            .ok_or_else(|| CloudError::UnknownInstanceType(name.to_string()))
    }

    /// The cheapest catalog type with at least `memory_gib` of RAM and `vcpus` cores.
    pub fn cheapest_fitting(memory_gib: f64, vcpus: u32) -> Option<&'static InstanceType> {
        INSTANCE_CATALOG
            .iter()
            .filter(|t| t.memory_gib >= memory_gib && t.vcpus >= vcpus)
            .min_by(|a, b| {
                a.on_demand_hourly_usd
                    .partial_cmp(&b.on_demand_hourly_usd)
                    .expect("catalog prices are finite")
            })
    }

    /// USD cost of running this type for `secs` seconds at the on-demand price.
    pub fn on_demand_cost(&self, secs: f64) -> f64 {
        self.on_demand_hourly_usd * secs / 3600.0
    }
}

/// Built-in instance catalog (subset of eu-central-1, 2024 ballpark prices).
pub const INSTANCE_CATALOG: &[InstanceType] = &[
    InstanceType { name: "r6a.xlarge", vcpus: 4, memory_gib: 32.0, on_demand_hourly_usd: 0.2724 },
    InstanceType { name: "r6a.2xlarge", vcpus: 8, memory_gib: 64.0, on_demand_hourly_usd: 0.5448 },
    InstanceType { name: "r6a.4xlarge", vcpus: 16, memory_gib: 128.0, on_demand_hourly_usd: 1.0896 },
    InstanceType { name: "r6a.8xlarge", vcpus: 32, memory_gib: 256.0, on_demand_hourly_usd: 2.1792 },
    InstanceType { name: "m6a.xlarge", vcpus: 4, memory_gib: 16.0, on_demand_hourly_usd: 0.2074 },
    InstanceType { name: "m6a.2xlarge", vcpus: 8, memory_gib: 32.0, on_demand_hourly_usd: 0.4147 },
    InstanceType { name: "m6a.4xlarge", vcpus: 16, memory_gib: 64.0, on_demand_hourly_usd: 0.8294 },
    InstanceType { name: "c6a.4xlarge", vcpus: 16, memory_gib: 32.0, on_demand_hourly_usd: 0.7344 },
    InstanceType { name: "c6a.8xlarge", vcpus: 32, memory_gib: 64.0, on_demand_hourly_usd: 1.4688 },
];

/// Unique id of a launched instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct InstanceId(pub u64);

impl std::fmt::Display for InstanceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "i-{:08x}", self.0)
    }
}

/// Lifecycle state of an instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum InstanceState {
    /// Booting + running init (index download & load into shared memory).
    Initializing,
    /// Ready to poll work.
    Running,
    /// Received a spot interruption notice: the worker stops pulling work and
    /// hands back (or checkpoints) what it holds before the reclaim lands.
    Draining,
    /// Terminated (scale-in, spot reclaim, or campaign end).
    Terminated,
}

/// A launched instance.
#[derive(Clone, Debug)]
pub struct Instance {
    /// Unique id.
    pub id: InstanceId,
    /// Its type (catalog entry).
    pub itype: &'static InstanceType,
    /// True when launched on the spot market.
    pub spot: bool,
    /// Launch timestamp.
    pub launched_at: SimTime,
    /// Current lifecycle state.
    pub state: InstanceState,
    /// Termination timestamp, once terminated.
    pub terminated_at: Option<SimTime>,
}

impl Instance {
    /// Launch a new instance (state starts at `Initializing`).
    pub fn launch(id: InstanceId, itype: &'static InstanceType, spot: bool, now: SimTime) -> Instance {
        Instance { id, itype, spot, launched_at: now, state: InstanceState::Initializing, terminated_at: None }
    }

    /// Mark initialization complete.
    pub fn mark_running(&mut self) -> Result<(), CloudError> {
        if self.state != InstanceState::Initializing {
            return Err(CloudError::InvalidState(format!(
                "{} cannot become Running from {:?}",
                self.id, self.state
            )));
        }
        self.state = InstanceState::Running;
        Ok(())
    }

    /// Begin draining after an interruption notice. Valid from `Initializing`
    /// or `Running`; idempotent from `Draining` (an instance can catch notices
    /// for both a market and a burst reclaim). A terminated instance cannot
    /// drain.
    pub fn mark_draining(&mut self) -> Result<(), CloudError> {
        match self.state {
            InstanceState::Initializing | InstanceState::Running | InstanceState::Draining => {
                self.state = InstanceState::Draining;
                Ok(())
            }
            InstanceState::Terminated => Err(CloudError::InvalidState(format!(
                "{} cannot drain after termination",
                self.id
            ))),
        }
    }

    /// Terminate (idempotent; records the first termination time).
    pub fn terminate(&mut self, now: SimTime) {
        if self.state != InstanceState::Terminated {
            self.state = InstanceState::Terminated;
            self.terminated_at = Some(now);
        }
    }

    /// Billable seconds as of `now` (until termination if terminated).
    pub fn billable_secs(&self, now: SimTime) -> f64 {
        let end = self.terminated_at.unwrap_or(now);
        (end - self.launched_at).as_secs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_contains_the_papers_testbed() {
        let t = InstanceType::by_name("r6a.4xlarge").unwrap();
        assert_eq!(t.vcpus, 16);
        assert_eq!(t.memory_gib, 128.0);
        assert!(InstanceType::by_name("z99.mega").is_err());
    }

    #[test]
    fn catalog_prices_scale_with_size_within_family() {
        let x = InstanceType::by_name("r6a.xlarge").unwrap();
        let x4 = InstanceType::by_name("r6a.4xlarge").unwrap();
        assert!((x4.on_demand_hourly_usd / x.on_demand_hourly_usd - 4.0).abs() < 0.01);
    }

    #[test]
    fn cheapest_fitting_picks_by_price() {
        // 100 GiB requirement (release-108-sized index): needs r6a.4xlarge.
        let t = InstanceType::cheapest_fitting(100.0, 4).unwrap();
        assert_eq!(t.name, "r6a.4xlarge");
        // 30 GiB (release-111-sized): r6a.xlarge (32 GiB) is the cheapest fit — a
        // quarter of the 4xlarge's price, the right-sizing saving of §III-A.
        let t = InstanceType::cheapest_fitting(30.0, 4).unwrap();
        assert_eq!(t.name, "r6a.xlarge");
        // Impossible requirement.
        assert!(InstanceType::cheapest_fitting(10_000.0, 4).is_none());
    }

    #[test]
    fn lifecycle_transitions() {
        let t = InstanceType::by_name("r6a.xlarge").unwrap();
        let mut i = Instance::launch(InstanceId(1), t, true, SimTime::from_secs(100.0));
        assert_eq!(i.state, InstanceState::Initializing);
        i.mark_running().unwrap();
        assert_eq!(i.state, InstanceState::Running);
        assert!(i.mark_running().is_err(), "double transition rejected");
        i.terminate(SimTime::from_secs(4100.0));
        assert_eq!(i.state, InstanceState::Terminated);
        assert_eq!(i.billable_secs(SimTime::from_secs(9999.0)), 4000.0);
        // Idempotent terminate keeps the first timestamp.
        i.terminate(SimTime::from_secs(8000.0));
        assert_eq!(i.terminated_at, Some(SimTime::from_secs(4100.0)));
    }

    #[test]
    fn draining_lifecycle() {
        let t = InstanceType::by_name("r6a.xlarge").unwrap();
        let mut i = Instance::launch(InstanceId(3), t, true, SimTime::ZERO);
        // Draining straight from Initializing (notice during init) is legal.
        i.mark_draining().unwrap();
        assert_eq!(i.state, InstanceState::Draining);
        // Idempotent: a second notice (market + burst) re-drains harmlessly.
        i.mark_draining().unwrap();
        // A draining instance cannot go back to Running.
        assert!(i.mark_running().is_err());
        // Reclaim lands: normal termination, still billed until then.
        i.terminate(SimTime::from_secs(300.0));
        assert_eq!(i.state, InstanceState::Terminated);
        assert_eq!(i.billable_secs(SimTime::from_secs(999.0)), 300.0);
        assert!(i.mark_draining().is_err(), "terminated instances cannot drain");

        let mut r = Instance::launch(InstanceId(4), t, true, SimTime::ZERO);
        r.mark_running().unwrap();
        r.mark_draining().unwrap();
        assert_eq!(r.state, InstanceState::Draining);
    }

    #[test]
    fn billable_time_of_running_instance_uses_now() {
        let t = InstanceType::by_name("r6a.xlarge").unwrap();
        let i = Instance::launch(InstanceId(2), t, false, SimTime::from_secs(0.0));
        assert_eq!(i.billable_secs(SimTime::from_secs(1800.0)), 1800.0);
    }

    #[test]
    fn on_demand_cost_is_hourly_rate() {
        let t = InstanceType::by_name("r6a.4xlarge").unwrap();
        assert!((t.on_demand_cost(3600.0) - 1.0896).abs() < 1e-9);
        assert!((t.on_demand_cost(1800.0) - 0.5448).abs() < 1e-9);
    }

    #[test]
    fn instance_id_display() {
        assert_eq!(InstanceId(0xAB).to_string(), "i-000000ab");
    }
}
