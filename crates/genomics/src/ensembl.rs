//! Deterministic generator of synthetic Ensembl-style assemblies.
//!
//! The paper's Fig. 3 optimization is structural: the release-108 *toplevel* genome
//! carries a large mass of unlocalized/unplaced scaffolds whose sequence duplicates
//! (gene-dense) chromosomal regions; by release 111 most of those scaffolds have been
//! assigned to chromosome sites, so the toplevel FASTA — and hence the STAR index —
//! shrinks by ~2.9× and loses most of its duplicated repetitive content.
//!
//! [`EnsemblGenerator`] reproduces exactly that structure at laptop scale:
//!
//! * chromosomes are **identical across releases** (same seed path), so mapping rates
//!   stay nearly identical — the paper reports <1 % mean difference;
//! * release 108 adds *duplicating scaffolds*: mutated copies of segments drawn from
//!   gene-dense "hotspot" intervals, totalling `scaffold_extra_ratio ×` the chromosome
//!   length. Because they concentrate on hotspots, every genic read gains several extra
//!   candidate loci, which is what makes alignment an order of magnitude slower;
//! * a small mass of *novel scaffolds* (sequence absent from chromosomes) is present in
//!   **every** release: these are why the Atlas must use *toplevel* rather than
//!   *primary_assembly* — dropping them loses real genes;
//! * later releases retain a shrinking deterministic prefix of the duplicating
//!   scaffolds (release 111 keeps almost none).

use crate::genome::{Assembly, AssemblyKind, Contig, ContigKind};
use crate::seq::{Base, DnaSeq};
use crate::GenomicsError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The Ensembl releases the paper discusses (§III-A).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Release {
    R108,
    R109,
    R110,
    R111,
}

impl Release {
    /// The numeric release identifier.
    pub fn number(self) -> u32 {
        match self {
            Release::R108 => 108,
            Release::R109 => 109,
            Release::R110 => 110,
            Release::R111 => 111,
        }
    }

    /// Fraction of the duplicating scaffolds still present (unplaced) at this release.
    /// The big drop happens between 109 and 110, matching the paper's narrative.
    pub fn scaffold_retention(self) -> f64 {
        match self {
            Release::R108 => 1.0,
            Release::R109 => 0.92,
            Release::R110 => 0.05,
            Release::R111 => 0.02,
        }
    }

    /// All modeled releases, oldest first.
    pub const ALL: [Release; 4] = [Release::R108, Release::R109, Release::R110, Release::R111];
}

/// Parameters controlling the synthetic assembly.
///
/// Defaults are calibrated so that the release-108 : release-111 toplevel size ratio is
/// ≈2.9 (paper: 85 GiB vs 29.5 GiB index) and genic reads gain roughly an order of
/// magnitude more candidate alignment loci on release 108.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EnsemblParams {
    /// Master seed; every derived RNG is a pure function of this.
    pub seed: u64,
    /// Number of chromosomes.
    pub n_chromosomes: usize,
    /// Length of each chromosome in bases.
    pub chromosome_len: usize,
    /// Fraction of each chromosome covered by gene-dense hotspot intervals.
    pub hotspot_fraction: f64,
    /// Number of hotspot intervals per chromosome.
    pub hotspots_per_chromosome: usize,
    /// Total duplicating-scaffold sequence as a multiple of total chromosome length
    /// (release 108 value; later releases retain a prefix of it).
    pub scaffold_extra_ratio: f64,
    /// Mean duplicating-scaffold length (actual lengths vary ±50 %).
    pub scaffold_mean_len: usize,
    /// Per-base substitution probability applied to scaffold copies (alt-haplotype
    /// style divergence; must stay well below the aligner's mismatch tolerance so the
    /// copies genuinely attract seeds).
    pub scaffold_divergence: f64,
    /// Total novel-scaffold sequence as a multiple of total chromosome length.
    /// Present in all releases; carries real genes.
    pub novel_scaffold_ratio: f64,
    /// Number of interspersed-repeat families seeded into chromosomes.
    pub repeat_families: usize,
    /// Length of each repeat element.
    pub repeat_len: usize,
    /// Fraction of chromosome sequence occupied by repeat elements.
    pub repeat_fraction: f64,
}

impl Default for EnsemblParams {
    fn default() -> Self {
        EnsemblParams {
            seed: 42,
            n_chromosomes: 4,
            chromosome_len: 400_000,
            hotspot_fraction: 0.10,
            hotspots_per_chromosome: 2,
            scaffold_extra_ratio: 1.88,
            scaffold_mean_len: 6_000,
            scaffold_divergence: 0.009,
            novel_scaffold_ratio: 0.02,
            repeat_families: 4,
            repeat_len: 300,
            repeat_fraction: 0.08,
        }
    }
}

impl EnsemblParams {
    /// A smaller configuration for fast unit tests.
    pub fn tiny() -> Self {
        EnsemblParams {
            n_chromosomes: 2,
            chromosome_len: 20_000,
            scaffold_mean_len: 1_500,
            ..EnsemblParams::default()
        }
    }

    /// Validate internal consistency.
    pub fn validate(&self) -> Result<(), GenomicsError> {
        if self.n_chromosomes == 0 || self.chromosome_len == 0 {
            return Err(GenomicsError::InvalidParams("need at least one non-empty chromosome".into()));
        }
        if !(0.0..=1.0).contains(&self.hotspot_fraction) || !(0.0..=1.0).contains(&self.repeat_fraction) {
            return Err(GenomicsError::InvalidParams("fractions must be in [0,1]".into()));
        }
        if self.hotspots_per_chromosome == 0 && self.hotspot_fraction > 0.0 {
            return Err(GenomicsError::InvalidParams("hotspot_fraction > 0 requires hotspots".into()));
        }
        if self.scaffold_mean_len == 0 && self.scaffold_extra_ratio > 0.0 {
            return Err(GenomicsError::InvalidParams("scaffold_mean_len must be positive".into()));
        }
        if self.scaffold_divergence < 0.0 || self.scaffold_divergence > 0.2 {
            return Err(GenomicsError::InvalidParams(
                "scaffold_divergence outside plausible [0, 0.2]".into(),
            ));
        }
        Ok(())
    }
}

/// A half-open interval `[start, end)` on a chromosome.
pub type Interval = (usize, usize);

/// Deterministic assembly generator; see module docs for the model.
#[derive(Clone, Debug)]
pub struct EnsemblGenerator {
    params: EnsemblParams,
}

impl EnsemblGenerator {
    /// Create a generator. Fails if `params` are inconsistent.
    pub fn new(params: EnsemblParams) -> Result<EnsemblGenerator, GenomicsError> {
        params.validate()?;
        Ok(EnsemblGenerator { params })
    }

    /// The parameters in use.
    pub fn params(&self) -> &EnsemblParams {
        &self.params
    }

    fn rng_for(&self, stage: u64) -> StdRng {
        // Derive per-stage RNGs so chromosomes are identical no matter which release
        // or how many scaffolds are requested.
        StdRng::seed_from_u64(self.params.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(stage))
    }

    /// Gene-dense hotspot intervals for chromosome `chrom` (deterministic).
    pub fn hotspots(&self, chrom: usize) -> Vec<Interval> {
        let p = &self.params;
        if p.hotspot_fraction == 0.0 || p.hotspots_per_chromosome == 0 {
            return Vec::new();
        }
        let mut rng = self.rng_for(1000 + chrom as u64);
        let per_len =
            ((p.chromosome_len as f64 * p.hotspot_fraction) / p.hotspots_per_chromosome as f64) as usize;
        let per_len = per_len.max(1).min(p.chromosome_len);
        // Place hotspots in disjoint equal slots so they never overlap.
        let slot = p.chromosome_len / p.hotspots_per_chromosome;
        (0..p.hotspots_per_chromosome)
            .map(|i| {
                let lo = i * slot;
                let max_start = lo + slot.saturating_sub(per_len);
                let start = if max_start > lo { rng.gen_range(lo..=max_start) } else { lo };
                (start, (start + per_len).min(p.chromosome_len))
            })
            .collect()
    }

    /// Generate the chromosome set (identical for every release).
    fn chromosomes(&self) -> Vec<Contig> {
        let p = &self.params;
        // Repeat family library shared across chromosomes.
        let mut fam_rng = self.rng_for(1);
        let families: Vec<DnaSeq> =
            (0..p.repeat_families).map(|_| DnaSeq::random(&mut fam_rng, p.repeat_len)).collect();

        (0..p.n_chromosomes)
            .map(|i| {
                let mut rng = self.rng_for(2000 + i as u64);
                let mut seq = DnaSeq::random(&mut rng, p.chromosome_len);
                // Overwrite a fraction of the chromosome with slightly mutated repeat
                // elements — interspersed repeats are what make even a deduplicated
                // genome produce some multimapping seeds.
                if !families.is_empty() && p.repeat_len > 0 && p.repeat_len < p.chromosome_len {
                    let n_elements =
                        ((p.chromosome_len as f64 * p.repeat_fraction) / p.repeat_len as f64) as usize;
                    for _ in 0..n_elements {
                        let fam = &families[rng.gen_range(0..families.len())];
                        let pos = rng.gen_range(0..p.chromosome_len - p.repeat_len);
                        let mutated = mutate(fam, 0.03, &mut rng);
                        overwrite(&mut seq, pos, &mutated);
                    }
                }
                Contig { name: format!("{}", i + 1), kind: ContigKind::Chromosome, seq }
            })
            .collect()
    }

    /// Number of complete duplication rounds implied by the ratio parameters: the
    /// hotspot copy number of the release-108 assembly.
    pub fn duplication_rounds(&self) -> usize {
        let p = &self.params;
        if p.hotspot_fraction <= 0.0 || p.scaffold_extra_ratio <= 0.0 {
            return 0;
        }
        (p.scaffold_extra_ratio / p.hotspot_fraction).round().max(1.0) as usize
    }

    /// Generate the full (release-108) list of duplicating scaffolds.
    ///
    /// Hotspots are tiled *uniformly*: every hotspot is copied in
    /// [`EnsemblGenerator::duplication_rounds`] complete rounds, each round cut into
    /// random-length chunks at fresh offsets. Uniform copy number matters: a genic
    /// read on release 108 then sees `rounds (+1)` candidate loci — enough to inflate
    /// alignment work by roughly that factor, but bounded so reads never trip STAR's
    /// `--outFilterMultimapNmax` and mapping rates stay within the paper's <1 % of
    /// the release-111 run.
    fn duplicating_scaffolds(&self, chromosomes: &[Contig]) -> Vec<Contig> {
        let p = &self.params;
        let rounds = self.duplication_rounds();
        if rounds == 0 {
            return Vec::new();
        }
        let mut rng = self.rng_for(3);
        let mut scaffolds = Vec::new();
        let mut serial = 0u32;
        for _round in 0..rounds {
            for (ci, chrom) in chromosomes.iter().enumerate() {
                for (lo, hi) in self.hotspots(ci) {
                    // Cut this hotspot copy into random-length chunks.
                    let mut pos = lo;
                    while pos < hi {
                        let len = sample_len(p.scaffold_mean_len, &mut rng).min(hi - pos);
                        let segment = chrom.seq.subseq(pos, pos + len);
                        let seq = mutate(&segment, p.scaffold_divergence, &mut rng);
                        serial += 1;
                        let kind = if rng.gen_bool(0.5) {
                            ContigKind::UnlocalizedScaffold
                        } else {
                            ContigKind::UnplacedScaffold
                        };
                        let prefix = if kind == ContigKind::UnlocalizedScaffold { "GL" } else { "KI" };
                        scaffolds.push(Contig { name: format!("{prefix}27{serial:04}.1"), kind, seq });
                        pos += len;
                    }
                }
            }
        }
        scaffolds
    }

    /// Generate the novel scaffolds (present in every release, carry real genes).
    fn novel_scaffolds(&self, total_chrom: usize) -> Vec<Contig> {
        let p = &self.params;
        let target = (total_chrom as f64 * p.novel_scaffold_ratio) as usize;
        if target == 0 {
            return Vec::new();
        }
        let mut rng = self.rng_for(4);
        let mut out = Vec::new();
        let mut emitted = 0usize;
        let mut serial = 0u32;
        while emitted < target {
            let len = sample_len(p.scaffold_mean_len.max(1), &mut rng);
            serial += 1;
            let seq = DnaSeq::random(&mut rng, len);
            emitted += len;
            out.push(Contig {
                name: format!("KN99{serial:04}.1"),
                kind: ContigKind::UnplacedScaffold,
                seq,
            });
        }
        out
    }

    /// Generate the *toplevel* assembly for `release`.
    pub fn generate(&self, release: Release) -> Assembly {
        let chromosomes = self.chromosomes();
        let total_chrom: usize = chromosomes.iter().map(Contig::len).sum();
        let dup = self.duplicating_scaffolds(&chromosomes);
        let retained = (dup.len() as f64 * release.scaffold_retention()).round() as usize;
        let novel = self.novel_scaffolds(total_chrom);

        let mut contigs = chromosomes;
        contigs.extend(dup.into_iter().take(retained));
        contigs.extend(novel);
        Assembly {
            name: "GRCh38-sim".into(),
            release: release.number(),
            kind: AssemblyKind::Toplevel,
            contigs,
        }
    }
}

/// Copy `src` over `dst` starting at `pos` (must fit).
fn overwrite(dst: &mut DnaSeq, pos: usize, src: &DnaSeq) {
    let mut codes = dst.codes().to_vec();
    codes[pos..pos + src.len()].copy_from_slice(src.codes());
    *dst = DnaSeq::from_codes(codes);
}

/// Apply i.i.d. substitutions with probability `rate` to a copy of `seq`.
fn mutate<R: Rng + ?Sized>(seq: &DnaSeq, rate: f64, rng: &mut R) -> DnaSeq {
    let mut out = DnaSeq::with_capacity(seq.len());
    for b in seq.iter() {
        if rate > 0.0 && rng.gen_bool(rate) {
            // Substitute with one of the three other bases.
            let mut nb = Base::random(rng);
            while nb == b {
                nb = Base::random(rng);
            }
            out.push(nb);
        } else {
            out.push(b);
        }
    }
    out
}

/// Sample a length uniformly in `[mean/2, 3*mean/2]`.
fn sample_len<R: Rng + ?Sized>(mean: usize, rng: &mut R) -> usize {
    let lo = (mean / 2).max(1);
    let hi = (mean * 3 / 2).max(lo + 1);
    rng.gen_range(lo..hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen() -> EnsemblGenerator {
        EnsemblGenerator::new(EnsemblParams::tiny()).unwrap()
    }

    #[test]
    fn chromosomes_identical_across_releases() {
        let g = gen();
        let a108 = g.generate(Release::R108);
        let a111 = g.generate(Release::R111);
        let c108: Vec<_> = a108.chromosomes().collect();
        let c111: Vec<_> = a111.chromosomes().collect();
        assert_eq!(c108.len(), c111.len());
        for (a, b) in c108.iter().zip(&c111) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.seq, b.seq);
        }
    }

    #[test]
    fn release_108_is_much_larger_than_111() {
        let g = gen();
        let a108 = g.generate(Release::R108);
        let a111 = g.generate(Release::R111);
        let ratio = a108.total_len() as f64 / a111.total_len() as f64;
        // Target is ~2.9 (paper: 85 GiB vs 29.5 GiB); allow generation slack.
        assert!(ratio > 2.3 && ratio < 3.3, "size ratio {ratio}");
        assert_eq!(a108.release, 108);
        assert_eq!(a111.release, 111);
    }

    #[test]
    fn retention_is_monotonically_decreasing() {
        let g = gen();
        let sizes: Vec<usize> = Release::ALL.iter().map(|&r| g.generate(r).total_len()).collect();
        for w in sizes.windows(2) {
            assert!(w[0] >= w[1], "sizes must not grow with release: {sizes:?}");
        }
    }

    #[test]
    fn novel_scaffolds_present_in_all_releases() {
        let g = gen();
        for r in Release::ALL {
            let a = g.generate(r);
            let novel = a.contigs.iter().filter(|c| c.name.starts_with("KN99")).count();
            assert!(novel > 0, "release {} lost novel scaffolds", r.number());
        }
        // And the same ones.
        let n108: Vec<_> =
            g.generate(Release::R108).contigs.iter().filter(|c| c.name.starts_with("KN99")).cloned().collect();
        let n111: Vec<_> =
            g.generate(Release::R111).contigs.iter().filter(|c| c.name.starts_with("KN99")).cloned().collect();
        assert_eq!(n108, n111);
    }

    #[test]
    fn duplicating_scaffolds_resemble_hotspot_sequence() {
        let g = gen();
        let a = g.generate(Release::R108);
        // Each duplicating scaffold (GL/KI prefix, not KN99) must be a near-copy of
        // SOME chromosome window: verify high identity at its source via scan of one.
        let scaffold = a
            .contigs
            .iter()
            .find(|c| c.kind != ContigKind::Chromosome && !c.name.starts_with("KN99"))
            .expect("tiny params still produce scaffolds");
        let probe_len = 60.min(scaffold.len());
        let probe = scaffold.seq.subseq(0, probe_len);
        let mut best = 0.0f64;
        for chrom in a.chromosomes() {
            for start in 0..chrom.len().saturating_sub(probe_len) {
                let id = probe.identity(&chrom.seq.subseq(start, start + probe_len));
                if id > best {
                    best = id;
                }
                if best > 0.95 {
                    break;
                }
            }
        }
        assert!(best > 0.9, "scaffold should match a chromosome window, best identity {best}");
    }

    #[test]
    fn hotspots_are_disjoint_in_bounds_and_deterministic() {
        let g = gen();
        let hs1 = g.hotspots(0);
        let hs2 = g.hotspots(0);
        assert_eq!(hs1, hs2);
        let len = g.params().chromosome_len;
        let mut prev_end = 0usize;
        for &(s, e) in &hs1 {
            assert!(s < e && e <= len);
            assert!(s >= prev_end, "hotspots must be disjoint and ordered");
            prev_end = e;
        }
        let covered: usize = hs1.iter().map(|&(s, e)| e - s).sum();
        let expect = (len as f64 * g.params().hotspot_fraction) as usize;
        assert!((covered as i64 - expect as i64).unsigned_abs() as usize <= hs1.len() * 2);
    }

    #[test]
    fn generation_is_fully_deterministic() {
        let a = gen().generate(Release::R108);
        let b = gen().generate(Release::R108);
        assert_eq!(a.contigs.len(), b.contigs.len());
        for (x, y) in a.contigs.iter().zip(&b.contigs) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn invalid_params_are_rejected() {
        let mut p = EnsemblParams::tiny();
        p.n_chromosomes = 0;
        assert!(EnsemblGenerator::new(p).is_err());
        let mut p = EnsemblParams::tiny();
        p.hotspot_fraction = 1.5;
        assert!(EnsemblGenerator::new(p).is_err());
        let mut p = EnsemblParams::tiny();
        p.scaffold_divergence = 0.5;
        assert!(EnsemblGenerator::new(p).is_err());
    }
}
