//! Sequence primitives and synthetic-data substrates for the Transcriptomics Atlas
//! reproduction.
//!
//! This crate provides everything below the aligner:
//!
//! * [`seq`] — DNA alphabet, working sequences, a 2-bit packed representation.
//! * [`fasta`] / [`fastq`] — plain-text sequence formats used between pipeline stages.
//! * [`genome`] — assembly model: chromosomes plus unlocalized/unplaced scaffolds, and
//!   the Ensembl *toplevel* vs *primary_assembly* distinction the paper relies on.
//! * [`ensembl`] — deterministic generator of synthetic "release 108" and "release 111"
//!   assemblies whose structural difference (placed vs duplicated scaffolds) reproduces
//!   the paper's index-size and alignment-speed gap.
//! * [`annotation`] — GTF-lite gene/exon model used by GeneCounts quantification.
//! * [`gtf`] — GTF text parser (inverse of [`Annotation::to_gtf`]).
//! * [`simulate`] — RNA-seq read simulators for bulk poly-A and single-cell 3' libraries,
//!   including the low-mappability read classes that trigger early stopping.
//!
//! Everything is seeded and deterministic: the same seed always produces the same
//! genome, annotation and reads, which the test-suite and the experiment harness rely on.

pub mod annotation;
pub mod ensembl;
pub mod error;
pub mod fasta;
pub mod fastq;
pub mod genome;
pub mod gtf;
pub mod seq;
pub mod simulate;

pub use annotation::{Annotation, Exon, Gene, Strand};
pub use ensembl::{EnsemblGenerator, EnsemblParams, Release};
pub use error::GenomicsError;
pub use fasta::FastaRecord;
pub use fastq::FastqRecord;
pub use genome::{Assembly, AssemblyKind, Contig, ContigKind};
pub use seq::{Base, DnaSeq, PackedDna};
pub use simulate::{LibraryType, PairedRead, ReadSimulator, SimulatedRead, SimulatorParams};
