//! DNA alphabet and sequence containers.
//!
//! The aligner works on byte-per-base code sequences ([`DnaSeq`]) for speed; long-term
//! storage and index-size accounting use the 2-bit [`PackedDna`] representation, which
//! is what real STAR stores in its `Genome` file.

use rand::Rng;
use std::fmt;

/// A single DNA base, stored as its 2-bit code (`A=0, C=1, G=2, T=3`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Base(u8);

impl Base {
    pub const A: Base = Base(0);
    pub const C: Base = Base(1);
    pub const G: Base = Base(2);
    pub const T: Base = Base(3);

    /// All four bases in code order.
    pub const ALL: [Base; 4] = [Base::A, Base::C, Base::G, Base::T];

    /// Construct from a 2-bit code. Panics if `code > 3` (programmer error).
    #[inline]
    pub fn from_code(code: u8) -> Base {
        assert!(code < 4, "base code out of range: {code}");
        Base(code)
    }

    /// The 2-bit code of this base.
    #[inline]
    pub fn code(self) -> u8 {
        self.0
    }

    /// Parse an ASCII character (case-insensitive). Ambiguity codes (`N`, `R`, ...)
    /// are rejected; the FASTA reader substitutes them before calling this.
    #[inline]
    pub fn from_char(c: char) -> Option<Base> {
        match c {
            'A' | 'a' => Some(Base::A),
            'C' | 'c' => Some(Base::C),
            'G' | 'g' => Some(Base::G),
            'T' | 't' => Some(Base::T),
            _ => None,
        }
    }

    /// The ASCII character for this base.
    #[inline]
    pub fn to_char(self) -> char {
        match self.0 {
            0 => 'A',
            1 => 'C',
            2 => 'G',
            3 => 'T',
            _ => unreachable!(),
        }
    }

    /// Watson–Crick complement (`A<->T`, `C<->G`).
    #[inline]
    pub fn complement(self) -> Base {
        Base(3 - self.0)
    }

    /// A uniformly random base.
    #[inline]
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Base {
        Base(rng.gen_range(0..4u8))
    }
}

impl fmt::Display for Base {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

/// A DNA sequence stored one byte per base (2-bit code in each byte).
///
/// This is the working representation used throughout alignment: random access is a
/// plain array index and comparisons compile to byte compares.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct DnaSeq {
    codes: Vec<u8>,
}

impl DnaSeq {
    /// An empty sequence.
    pub fn new() -> DnaSeq {
        DnaSeq { codes: Vec::new() }
    }

    /// An empty sequence with reserved capacity.
    pub fn with_capacity(cap: usize) -> DnaSeq {
        DnaSeq { codes: Vec::with_capacity(cap) }
    }

    /// Build from raw 2-bit codes. Panics if any code is `> 3`.
    pub fn from_codes(codes: Vec<u8>) -> DnaSeq {
        assert!(codes.iter().all(|&c| c < 4), "invalid base code");
        DnaSeq { codes }
    }

    /// Parse from an ASCII string of `ACGT` (case-insensitive).
    pub fn from_str_strict(s: &str) -> Result<DnaSeq, crate::GenomicsError> {
        let mut codes = Vec::with_capacity(s.len());
        for c in s.chars() {
            match Base::from_char(c) {
                Some(b) => codes.push(b.code()),
                None => return Err(crate::GenomicsError::InvalidBase(c)),
            }
        }
        Ok(DnaSeq { codes })
    }

    /// Generate `len` uniformly random bases.
    pub fn random<R: Rng + ?Sized>(rng: &mut R, len: usize) -> DnaSeq {
        let codes = (0..len).map(|_| rng.gen_range(0..4u8)).collect();
        DnaSeq { codes }
    }

    /// Number of bases.
    #[inline]
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True when the sequence contains no bases.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The base at position `i`.
    #[inline]
    pub fn base(&self, i: usize) -> Base {
        Base(self.codes[i])
    }

    /// Raw 2-bit codes, one per byte.
    #[inline]
    pub fn codes(&self) -> &[u8] {
        &self.codes
    }

    /// Append a base.
    #[inline]
    pub fn push(&mut self, b: Base) {
        self.codes.push(b.code());
    }

    /// Append all bases of `other`.
    pub fn extend_from(&mut self, other: &DnaSeq) {
        self.codes.extend_from_slice(&other.codes);
    }

    /// Copy of the half-open range `[start, end)`.
    pub fn subseq(&self, start: usize, end: usize) -> DnaSeq {
        DnaSeq { codes: self.codes[start..end].to_vec() }
    }

    /// Reverse complement of the whole sequence.
    pub fn reverse_complement(&self) -> DnaSeq {
        let codes = self.codes.iter().rev().map(|&c| 3 - c).collect();
        DnaSeq { codes }
    }

    /// Iterator over bases.
    pub fn iter(&self) -> impl Iterator<Item = Base> + '_ {
        self.codes.iter().map(|&c| Base(c))
    }

    /// Fraction of positions where `self` and `other` agree, over the shorter length.
    /// Returns 1.0 for two empty sequences.
    pub fn identity(&self, other: &DnaSeq) -> f64 {
        let n = self.len().min(other.len());
        if n == 0 {
            return 1.0;
        }
        let same = (0..n).filter(|&i| self.codes[i] == other.codes[i]).count();
        same as f64 / n as f64
    }
}

impl fmt::Display for DnaSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &c in &self.codes {
            write!(f, "{}", Base(c).to_char())?;
        }
        Ok(())
    }
}

impl fmt::Debug for DnaSeq {
    /// Prints a truncated preview so test failures stay readable.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const PREVIEW: usize = 40;
        if self.len() <= PREVIEW {
            write!(f, "DnaSeq(\"{self}\")")
        } else {
            let head: String = self.iter().take(PREVIEW).map(|b| b.to_char()).collect();
            write!(f, "DnaSeq(\"{head}…\", len={})", self.len())
        }
    }
}

impl std::str::FromStr for DnaSeq {
    type Err = crate::GenomicsError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DnaSeq::from_str_strict(s)
    }
}

/// 2-bit packed DNA, four bases per byte — the storage representation used for index
/// size accounting (real STAR stores its `Genome` file this way).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PackedDna {
    words: Vec<u8>,
    len: usize,
}

impl PackedDna {
    /// Pack a [`DnaSeq`].
    pub fn pack(seq: &DnaSeq) -> PackedDna {
        let len = seq.len();
        let mut words = vec![0u8; len.div_ceil(4)];
        for (i, &code) in seq.codes().iter().enumerate() {
            words[i / 4] |= code << ((i % 4) * 2);
        }
        PackedDna { words, len }
    }

    /// Unpack back to a byte-per-base sequence.
    pub fn unpack(&self) -> DnaSeq {
        let mut codes = Vec::with_capacity(self.len);
        for i in 0..self.len {
            codes.push((self.words[i / 4] >> ((i % 4) * 2)) & 0b11);
        }
        DnaSeq::from_codes(codes)
    }

    /// Number of bases stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no bases are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The base at position `i` without unpacking.
    #[inline]
    pub fn base(&self, i: usize) -> Base {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        Base((self.words[i / 4] >> ((i % 4) * 2)) & 0b11)
    }

    /// Bytes occupied by the packed payload (the index-size accounting unit).
    #[inline]
    pub fn byte_size(&self) -> usize {
        self.words.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn base_char_round_trip() {
        for b in Base::ALL {
            assert_eq!(Base::from_char(b.to_char()), Some(b));
            assert_eq!(Base::from_char(b.to_char().to_ascii_lowercase()), Some(b));
        }
        assert_eq!(Base::from_char('N'), None);
        assert_eq!(Base::from_char('x'), None);
    }

    #[test]
    fn complement_is_involutive_and_correct() {
        assert_eq!(Base::A.complement(), Base::T);
        assert_eq!(Base::C.complement(), Base::G);
        for b in Base::ALL {
            assert_eq!(b.complement().complement(), b);
        }
    }

    #[test]
    fn dnaseq_parse_and_display() {
        let s: DnaSeq = "ACGTacgt".parse().unwrap();
        assert_eq!(s.to_string(), "ACGTACGT");
        assert_eq!(s.len(), 8);
        assert!("ACGN".parse::<DnaSeq>().is_err());
    }

    #[test]
    fn reverse_complement_known_value() {
        let s: DnaSeq = "AACGT".parse().unwrap();
        assert_eq!(s.reverse_complement().to_string(), "ACGTT");
    }

    #[test]
    fn reverse_complement_is_involutive() {
        let mut rng = StdRng::seed_from_u64(7);
        let s = DnaSeq::random(&mut rng, 257);
        assert_eq!(s.reverse_complement().reverse_complement(), s);
    }

    #[test]
    fn subseq_matches_slice_semantics() {
        let s: DnaSeq = "ACGTACGT".parse().unwrap();
        assert_eq!(s.subseq(2, 6).to_string(), "GTAC");
        assert_eq!(s.subseq(0, 0).len(), 0);
    }

    #[test]
    fn identity_counts_matches() {
        let a: DnaSeq = "ACGT".parse().unwrap();
        let b: DnaSeq = "ACGA".parse().unwrap();
        assert!((a.identity(&b) - 0.75).abs() < 1e-12);
        assert_eq!(DnaSeq::new().identity(&DnaSeq::new()), 1.0);
    }

    #[test]
    fn packed_round_trip_various_lengths() {
        let mut rng = StdRng::seed_from_u64(42);
        for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 63, 64, 65, 1000] {
            let s = DnaSeq::random(&mut rng, len);
            let p = PackedDna::pack(&s);
            assert_eq!(p.len(), len);
            assert_eq!(p.unpack(), s, "round trip failed at len {len}");
            for i in 0..len {
                assert_eq!(p.base(i), s.base(i));
            }
            assert_eq!(p.byte_size(), len.div_ceil(4));
        }
    }

    #[test]
    fn random_seq_is_deterministic_per_seed() {
        let a = DnaSeq::random(&mut StdRng::seed_from_u64(5), 100);
        let b = DnaSeq::random(&mut StdRng::seed_from_u64(5), 100);
        assert_eq!(a, b);
    }
}
