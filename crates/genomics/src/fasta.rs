//! Minimal FASTA reader/writer.
//!
//! FASTA is the interchange format for reference genomes (the paper downloads the
//! Ensembl toplevel FASTA). Ambiguity codes (`N`, `R`, ...) are substituted with `A`
//! and counted, a documented simplification: the synthetic assemblies this crate
//! generates never contain them, and real-N handling does not affect any evaluated
//! claim.

use crate::seq::{Base, DnaSeq};
use crate::GenomicsError;
use std::io::{BufRead, Write};

/// One FASTA record: a header line (without `>`) and its sequence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FastaRecord {
    /// Full header text after `>`, e.g. `"1 dna:chromosome chromosome:GRCh38:1:..."`.
    pub header: String,
    /// The sequence body.
    pub seq: DnaSeq,
}

impl FastaRecord {
    /// The record identifier: the header up to the first whitespace.
    pub fn id(&self) -> &str {
        self.header.split_whitespace().next().unwrap_or("")
    }
}

/// Outcome of [`read_fasta`]: the records plus a count of substituted ambiguity bases.
#[derive(Debug, Default)]
pub struct FastaParseStats {
    /// How many non-ACGT characters were replaced with `A`.
    pub substituted_ambiguous: u64,
}

/// Read all records from a FASTA stream.
pub fn read_fasta<R: BufRead>(reader: R) -> Result<(Vec<FastaRecord>, FastaParseStats), GenomicsError> {
    let mut records = Vec::new();
    let mut stats = FastaParseStats::default();
    let mut header: Option<String> = None;
    let mut seq = DnaSeq::new();

    for line in reader.lines() {
        let line = line?;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(h) = line.strip_prefix('>') {
            if let Some(prev) = header.take() {
                records.push(FastaRecord { header: prev, seq: std::mem::take(&mut seq) });
            }
            header = Some(h.to_string());
        } else {
            if header.is_none() {
                return Err(GenomicsError::Format("sequence data before first '>' header".into()));
            }
            for c in line.chars() {
                match Base::from_char(c) {
                    Some(b) => seq.push(b),
                    None if c.is_ascii_alphabetic() => {
                        stats.substituted_ambiguous += 1;
                        seq.push(Base::A);
                    }
                    None => return Err(GenomicsError::InvalidBase(c)),
                }
            }
        }
    }
    if let Some(h) = header {
        records.push(FastaRecord { header: h, seq });
    }
    Ok((records, stats))
}

/// Write records in FASTA format, wrapping sequence lines at `width` columns.
pub fn write_fasta<W: Write>(mut w: W, records: &[FastaRecord], width: usize) -> Result<(), GenomicsError> {
    assert!(width > 0, "line width must be positive");
    for rec in records {
        writeln!(w, ">{}", rec.header)?;
        let s = rec.seq.to_string();
        for chunk in s.as_bytes().chunks(width) {
            w.write_all(chunk)?;
            w.write_all(b"\n")?;
        }
        if rec.seq.is_empty() {
            // An empty record still terminates cleanly with no body lines.
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(s: &str) -> (Vec<FastaRecord>, FastaParseStats) {
        read_fasta(Cursor::new(s.as_bytes())).unwrap()
    }

    #[test]
    fn parses_multiple_records_and_multiline_bodies() {
        let (recs, stats) = parse(">chr1 human\nACGT\nACG\n>chr2\nTTTT\n");
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].id(), "chr1");
        assert_eq!(recs[0].header, "chr1 human");
        assert_eq!(recs[0].seq.to_string(), "ACGTACG");
        assert_eq!(recs[1].seq.to_string(), "TTTT");
        assert_eq!(stats.substituted_ambiguous, 0);
    }

    #[test]
    fn substitutes_and_counts_ambiguity_codes() {
        let (recs, stats) = parse(">x\nACNNRT\n");
        assert_eq!(recs[0].seq.to_string(), "ACAAAT");
        assert_eq!(stats.substituted_ambiguous, 3);
    }

    #[test]
    fn rejects_body_before_header_and_non_alpha() {
        assert!(read_fasta(Cursor::new(b"ACGT\n".as_slice())).is_err());
        assert!(read_fasta(Cursor::new(b">x\nAC1T\n".as_slice())).is_err());
    }

    #[test]
    fn skips_blank_lines_and_handles_trailing_record() {
        let (recs, _) = parse("\n>only\n\nACGT\n\n");
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].seq.len(), 4);
    }

    #[test]
    fn write_then_read_round_trips() {
        let recs = vec![
            FastaRecord { header: "a desc".into(), seq: "ACGTACGTACGT".parse().unwrap() },
            FastaRecord { header: "b".into(), seq: "GG".parse().unwrap() },
        ];
        let mut buf = Vec::new();
        write_fasta(&mut buf, &recs, 5).unwrap();
        let (back, _) = read_fasta(Cursor::new(&buf)).unwrap();
        assert_eq!(back, recs);
        // Wrapping actually happened.
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("ACGTA\nCGTAC\nGT\n"));
    }
}
