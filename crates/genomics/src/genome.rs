//! Genome assembly model.
//!
//! An Ensembl assembly is a set of *contigs*: fully assembled chromosomes plus
//! *unlocalized* scaffolds (known chromosome, unknown position) and *unplaced*
//! scaffolds (unknown chromosome). The paper's genome-release optimization hinges on
//! the two published sequence sets:
//!
//! * **toplevel** — chromosomes *and* all scaffolds (required for the Atlas so no known
//!   contig is lost);
//! * **primary_assembly** — chromosomes only.
//!
//! Between releases 109 and 110 Ensembl assigned a large number of scaffolds to
//! chromosome sites, which shrank the *toplevel* FASTA dramatically. [`Assembly`]
//! models exactly this structure so the aligner's index inherits it.

use crate::fasta::FastaRecord;
use crate::seq::DnaSeq;
use serde::{Deserialize, Serialize};

/// What kind of contig a sequence is within the assembly.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ContigKind {
    /// A fully assembled chromosome.
    Chromosome,
    /// A scaffold assigned to a chromosome but not to a position on it.
    UnlocalizedScaffold,
    /// A scaffold not assigned to any chromosome.
    UnplacedScaffold,
}

/// One named sequence in an assembly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Contig {
    /// Ensembl-style name, e.g. `"1"` or `"KI270302.1"`.
    pub name: String,
    /// Role of this contig in the assembly.
    pub kind: ContigKind,
    /// The sequence.
    pub seq: DnaSeq,
}

impl Contig {
    /// Length in bases.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// True when the contig carries no sequence.
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }
}

/// Which published sequence set an [`Assembly`] value represents.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AssemblyKind {
    /// Chromosomes + unlocalized + unplaced scaffolds (what the Atlas pipeline needs).
    Toplevel,
    /// Chromosomes only.
    PrimaryAssembly,
}

/// A reference genome assembly: an ordered set of contigs plus provenance metadata.
#[derive(Clone, Debug)]
pub struct Assembly {
    /// Human-readable assembly name, e.g. `"GRCh38-sim"`.
    pub name: String,
    /// Ensembl release number this assembly snapshot corresponds to.
    pub release: u32,
    /// Which sequence set this is.
    pub kind: AssemblyKind,
    /// Contigs in FASTA order (chromosomes first, then scaffolds).
    pub contigs: Vec<Contig>,
}

impl Assembly {
    /// Total sequence length across all contigs.
    pub fn total_len(&self) -> usize {
        self.contigs.iter().map(Contig::len).sum()
    }

    /// Number of contigs of the given kind.
    pub fn count_kind(&self, kind: ContigKind) -> usize {
        self.contigs.iter().filter(|c| c.kind == kind).count()
    }

    /// Look up a contig by name.
    pub fn contig(&self, name: &str) -> Option<&Contig> {
        self.contigs.iter().find(|c| c.name == name)
    }

    /// The chromosomes only, in order.
    pub fn chromosomes(&self) -> impl Iterator<Item = &Contig> {
        self.contigs.iter().filter(|c| c.kind == ContigKind::Chromosome)
    }

    /// Derive the `primary_assembly` view (chromosomes only) of this assembly.
    pub fn to_primary_assembly(&self) -> Assembly {
        Assembly {
            name: self.name.clone(),
            release: self.release,
            kind: AssemblyKind::PrimaryAssembly,
            contigs: self.chromosomes().cloned().collect(),
        }
    }

    /// Render as FASTA records with Ensembl-style headers.
    pub fn to_fasta(&self) -> Vec<FastaRecord> {
        self.contigs
            .iter()
            .map(|c| {
                let role = match c.kind {
                    ContigKind::Chromosome => "chromosome",
                    ContigKind::UnlocalizedScaffold => "scaffold_unlocalized",
                    ContigKind::UnplacedScaffold => "scaffold_unplaced",
                };
                FastaRecord {
                    header: format!(
                        "{} dna:{role} {}:{}:{}:1:{}:1 REF",
                        c.name,
                        role,
                        self.name,
                        c.name,
                        c.len()
                    ),
                    seq: c.seq.clone(),
                }
            })
            .collect()
    }

    /// Approximate on-disk FASTA size in bytes (1 byte/base + headers + newlines),
    /// used to compare release file sizes like the paper's 108-vs-111 comparison.
    pub fn fasta_byte_size(&self) -> usize {
        const LINE_WIDTH: usize = 60;
        self.contigs
            .iter()
            .map(|c| {
                let body = c.len() + c.len().div_ceil(LINE_WIDTH);
                let header = c.name.len() + 48; // '>' + name + role text + newline
                body + header
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_assembly() -> Assembly {
        let mut rng = StdRng::seed_from_u64(1);
        Assembly {
            name: "TOY".into(),
            release: 108,
            kind: AssemblyKind::Toplevel,
            contigs: vec![
                Contig { name: "1".into(), kind: ContigKind::Chromosome, seq: DnaSeq::random(&mut rng, 500) },
                Contig { name: "2".into(), kind: ContigKind::Chromosome, seq: DnaSeq::random(&mut rng, 300) },
                Contig {
                    name: "KI1.1".into(),
                    kind: ContigKind::UnplacedScaffold,
                    seq: DnaSeq::random(&mut rng, 120),
                },
                Contig {
                    name: "GL2.1".into(),
                    kind: ContigKind::UnlocalizedScaffold,
                    seq: DnaSeq::random(&mut rng, 80),
                },
            ],
        }
    }

    #[test]
    fn total_len_and_kind_counts() {
        let a = toy_assembly();
        assert_eq!(a.total_len(), 1000);
        assert_eq!(a.count_kind(ContigKind::Chromosome), 2);
        assert_eq!(a.count_kind(ContigKind::UnplacedScaffold), 1);
        assert_eq!(a.count_kind(ContigKind::UnlocalizedScaffold), 1);
    }

    #[test]
    fn primary_assembly_drops_scaffolds_only() {
        let a = toy_assembly();
        let p = a.to_primary_assembly();
        assert_eq!(p.kind, AssemblyKind::PrimaryAssembly);
        assert_eq!(p.contigs.len(), 2);
        assert_eq!(p.total_len(), 800);
        assert!(p.contigs.iter().all(|c| c.kind == ContigKind::Chromosome));
        // Source untouched.
        assert_eq!(a.contigs.len(), 4);
    }

    #[test]
    fn contig_lookup_by_name() {
        let a = toy_assembly();
        assert_eq!(a.contig("KI1.1").unwrap().len(), 120);
        assert!(a.contig("nope").is_none());
    }

    #[test]
    fn fasta_headers_encode_role_and_length() {
        let a = toy_assembly();
        let recs = a.to_fasta();
        assert_eq!(recs.len(), 4);
        assert!(recs[0].header.contains("dna:chromosome"));
        assert!(recs[2].header.contains("scaffold_unplaced"));
        assert!(recs[0].header.contains(":500:"));
        assert_eq!(recs[0].id(), "1");
    }

    #[test]
    fn fasta_byte_size_tracks_sequence_plus_overhead() {
        let a = toy_assembly();
        let sz = a.fasta_byte_size();
        assert!(sz > a.total_len(), "must include headers/newlines");
        assert!(sz < a.total_len() + 1000, "overhead should be modest: {sz}");
    }
}
