//! GTF-lite gene annotation model.
//!
//! STAR's `--quantMode GeneCounts` needs a gene/exon model: reads are counted per gene
//! by overlap with exons (ReadsPerGene.out.tab). This module provides the minimal
//! structures — genes with ordered exons on stranded contigs — plus a deterministic
//! annotation simulator that places genes preferentially inside the generator's
//! gene-dense hotspots (which is what couples gene expression to the duplicated
//! scaffolds of release 108 and produces the Fig. 3 slowdown).

use crate::ensembl::{EnsemblGenerator, Interval};
use crate::genome::{Assembly, ContigKind};
use crate::seq::DnaSeq;
use crate::GenomicsError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Transcription strand.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Strand {
    Forward,
    Reverse,
}

impl Strand {
    /// GTF column-7 character.
    pub fn symbol(self) -> char {
        match self {
            Strand::Forward => '+',
            Strand::Reverse => '-',
        }
    }
}

/// One exon: a half-open genomic interval `[start, end)` on the gene's contig.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Exon {
    pub start: usize,
    pub end: usize,
}

impl Exon {
    /// Exon length in bases.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True for a degenerate zero-length exon (never produced by the simulator).
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// A gene: ordered, non-overlapping exons on one strand of one contig.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Gene {
    /// Stable identifier, e.g. `"ENSGSIM0000012"`.
    pub id: String,
    /// Contig (chromosome or scaffold) name the gene lies on.
    pub contig: String,
    /// Transcription strand.
    pub strand: Strand,
    /// Exons in genomic order (ascending `start`), non-overlapping.
    pub exons: Vec<Exon>,
}

impl Gene {
    /// Genomic span `[start, end)` from first exon start to last exon end.
    pub fn span(&self) -> (usize, usize) {
        (self.exons.first().map_or(0, |e| e.start), self.exons.last().map_or(0, |e| e.end))
    }

    /// Sum of exon lengths = mature transcript length.
    pub fn transcript_len(&self) -> usize {
        self.exons.iter().map(Exon::len).sum()
    }

    /// True if the genomic position falls inside any exon.
    pub fn contains_exonic(&self, pos: usize) -> bool {
        self.exons.iter().any(|e| pos >= e.start && pos < e.end)
    }

    /// Extract the mature (spliced) transcript sequence from the assembly.
    ///
    /// Exons are concatenated in genomic order; for a reverse-strand gene the result
    /// is reverse-complemented, matching how mRNA reads present in FASTQ.
    pub fn transcript(&self, assembly: &Assembly) -> Result<DnaSeq, GenomicsError> {
        let contig = assembly
            .contig(&self.contig)
            .ok_or_else(|| GenomicsError::NotFound(format!("contig {}", self.contig)))?;
        for e in &self.exons {
            if e.end > contig.len() {
                return Err(GenomicsError::InvalidParams(format!(
                    "exon {}..{} beyond contig {} (len {})",
                    e.start,
                    e.end,
                    self.contig,
                    contig.len()
                )));
            }
        }
        let mut t = DnaSeq::with_capacity(self.transcript_len());
        for e in &self.exons {
            t.extend_from(&contig.seq.subseq(e.start, e.end));
        }
        Ok(match self.strand {
            Strand::Forward => t,
            Strand::Reverse => t.reverse_complement(),
        })
    }

    /// Validate exon ordering/disjointness invariants.
    pub fn validate(&self) -> Result<(), GenomicsError> {
        if self.exons.is_empty() {
            return Err(GenomicsError::InvalidParams(format!("gene {} has no exons", self.id)));
        }
        let mut prev_end = 0usize;
        for (i, e) in self.exons.iter().enumerate() {
            if e.is_empty() {
                return Err(GenomicsError::InvalidParams(format!("gene {} exon {i} empty", self.id)));
            }
            if i > 0 && e.start < prev_end {
                return Err(GenomicsError::InvalidParams(format!(
                    "gene {} exon {i} overlaps/disorders previous",
                    self.id
                )));
            }
            prev_end = e.end;
        }
        Ok(())
    }
}

/// A full gene annotation for an assembly.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Annotation {
    /// All genes, in generation order (stable ids `ENSGSIM{serial:07}`).
    pub genes: Vec<Gene>,
}

/// Parameters for the annotation simulator.
#[derive(Clone, Debug)]
pub struct AnnotationParams {
    /// Seed for the annotation RNG (independent of the assembly seed).
    pub seed: u64,
    /// Genes placed per hotspot interval.
    pub genes_per_hotspot: usize,
    /// Genes placed outside hotspots, per chromosome.
    pub background_genes_per_chromosome: usize,
    /// Genes placed on each novel scaffold that is long enough.
    pub genes_per_novel_scaffold: usize,
    /// Exon count range (inclusive).
    pub exons_per_gene: (usize, usize),
    /// Exon length range (inclusive).
    pub exon_len: (usize, usize),
    /// Intron length range (inclusive).
    pub intron_len: (usize, usize),
}

impl Default for AnnotationParams {
    fn default() -> Self {
        AnnotationParams {
            seed: 7,
            genes_per_hotspot: 8,
            background_genes_per_chromosome: 4,
            genes_per_novel_scaffold: 1,
            exons_per_gene: (2, 6),
            exon_len: (120, 360),
            intron_len: (150, 900),
        }
    }
}

impl Annotation {
    /// Number of genes.
    pub fn len(&self) -> usize {
        self.genes.len()
    }

    /// True when no genes are annotated.
    pub fn is_empty(&self) -> bool {
        self.genes.is_empty()
    }

    /// Look up a gene by id.
    pub fn gene(&self, id: &str) -> Option<&Gene> {
        self.genes.iter().find(|g| g.id == id)
    }

    /// Genes on the named contig.
    pub fn genes_on<'a>(&'a self, contig: &'a str) -> impl Iterator<Item = &'a Gene> + 'a {
        self.genes.iter().filter(move |g| g.contig == contig)
    }

    /// Simulate an annotation for `assembly`, using the generator's hotspot layout so
    /// genes concentrate where release-108 scaffolds duplicate sequence.
    ///
    /// Genes on chromosomes are placed first (hotspot genes, then background genes),
    /// then one or more genes per sufficiently long novel scaffold. All placement is
    /// deterministic in `params.seed`.
    pub fn simulate(
        assembly: &Assembly,
        generator: &EnsemblGenerator,
        params: &AnnotationParams,
    ) -> Result<Annotation, GenomicsError> {
        let mut rng = StdRng::seed_from_u64(params.seed.wrapping_mul(0xD134_2543_DE82_EF95));
        let mut genes = Vec::new();
        let mut serial = 0u32;
        // Genes never overlap (real gene bodies rarely do, and overlap would turn
        // most unique exonic reads into `N_ambiguous` GeneCounts): track occupied
        // spans per contig and retry placements that collide.
        let mut occupied: std::collections::HashMap<&str, Vec<(usize, usize)>> =
            std::collections::HashMap::new();

        let chroms: Vec<_> = assembly.chromosomes().collect();
        for (ci, chrom) in chroms.iter().enumerate() {
            for hs in generator.hotspots(ci) {
                for _ in 0..params.genes_per_hotspot {
                    if let Some(g) = place_gene_disjoint(
                        &mut rng,
                        params,
                        &chrom.name,
                        hs,
                        &mut serial,
                        occupied.entry(chrom.name.as_str()).or_default(),
                    ) {
                        genes.push(g);
                    }
                }
            }
            for _ in 0..params.background_genes_per_chromosome {
                let span = (0, chrom.len());
                if let Some(g) = place_gene_disjoint(
                    &mut rng,
                    params,
                    &chrom.name,
                    span,
                    &mut serial,
                    occupied.entry(chrom.name.as_str()).or_default(),
                ) {
                    genes.push(g);
                }
            }
        }

        for contig in &assembly.contigs {
            if contig.kind != ContigKind::Chromosome && contig.name.starts_with("KN99") {
                for _ in 0..params.genes_per_novel_scaffold {
                    let span = (0, contig.len());
                    if let Some(g) = place_gene_disjoint(
                        &mut rng,
                        params,
                        &contig.name,
                        span,
                        &mut serial,
                        occupied.entry(contig.name.as_str()).or_default(),
                    ) {
                        genes.push(g);
                    }
                }
            }
        }

        let ann = Annotation { genes };
        for g in &ann.genes {
            g.validate()?;
        }
        Ok(ann)
    }

    /// Render in a GTF-like tab-separated text form (exon rows only).
    pub fn to_gtf(&self) -> String {
        let mut out = String::new();
        for g in &self.genes {
            for (i, e) in g.exons.iter().enumerate() {
                // GTF is 1-based inclusive.
                out.push_str(&format!(
                    "{}\tsim\texon\t{}\t{}\t.\t{}\t.\tgene_id \"{}\"; exon_number {};\n",
                    g.contig,
                    e.start + 1,
                    e.end,
                    g.strand.symbol(),
                    g.id,
                    i + 1
                ));
            }
        }
        out
    }
}

/// Place one gene within `region` of `contig` without overlapping `occupied` spans;
/// retries a handful of layouts, then gives up (dense regions simply hold fewer
/// genes). Successful placements are recorded in `occupied`.
fn place_gene_disjoint(
    rng: &mut StdRng,
    params: &AnnotationParams,
    contig: &str,
    region: Interval,
    serial: &mut u32,
    occupied: &mut Vec<(usize, usize)>,
) -> Option<Gene> {
    const ATTEMPTS: usize = 12;
    for _ in 0..ATTEMPTS {
        let mut trial_serial = *serial;
        if let Some(gene) = place_gene(rng, params, contig, region, &mut trial_serial) {
            let (start, end) = gene.span();
            if occupied.iter().all(|&(s, e)| end <= s || start >= e) {
                occupied.push((start, end));
                *serial = trial_serial;
                return Some(gene);
            }
        } else {
            return None; // the region cannot hold a gene at all
        }
    }
    None
}

/// Try to place one gene within `region` of `contig`; returns `None` when the region
/// is too small to hold even a single-exon gene.
fn place_gene(
    rng: &mut StdRng,
    params: &AnnotationParams,
    contig: &str,
    region: Interval,
    serial: &mut u32,
) -> Option<Gene> {
    let (lo, hi) = region;
    if hi <= lo {
        return None;
    }
    let avail = hi - lo;
    let n_exons = rng.gen_range(params.exons_per_gene.0..=params.exons_per_gene.1);
    // Draw a gene body layout, shrinking the exon count until it fits.
    for n in (1..=n_exons).rev() {
        let exon_lens: Vec<usize> =
            (0..n).map(|_| rng.gen_range(params.exon_len.0..=params.exon_len.1)).collect();
        let intron_lens: Vec<usize> = (0..n.saturating_sub(1))
            .map(|_| rng.gen_range(params.intron_len.0..=params.intron_len.1))
            .collect();
        let body: usize = exon_lens.iter().sum::<usize>() + intron_lens.iter().sum::<usize>();
        if body >= avail {
            continue;
        }
        let start = lo + rng.gen_range(0..avail - body);
        let mut exons = Vec::with_capacity(n);
        let mut pos = start;
        for (i, &el) in exon_lens.iter().enumerate() {
            exons.push(Exon { start: pos, end: pos + el });
            pos += el;
            if i < intron_lens.len() {
                pos += intron_lens[i];
            }
        }
        *serial += 1;
        let strand = if rng.gen_bool(0.5) { Strand::Forward } else { Strand::Reverse };
        return Some(Gene { id: format!("ENSGSIM{serial:07}"), contig: contig.to_string(), strand, exons });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ensembl::{EnsemblParams, Release};

    fn setup() -> (Assembly, EnsemblGenerator, Annotation) {
        let g = EnsemblGenerator::new(EnsemblParams::tiny()).unwrap();
        let a = g.generate(Release::R111);
        let ann = Annotation::simulate(&a, &g, &AnnotationParams::default()).unwrap();
        (a, g, ann)
    }

    #[test]
    fn simulated_genes_validate_and_fit_contigs() {
        let (a, _, ann) = setup();
        assert!(!ann.is_empty());
        for g in &ann.genes {
            g.validate().unwrap();
            let contig = a.contig(&g.contig).unwrap();
            let (_, end) = g.span();
            assert!(end <= contig.len(), "gene {} exceeds contig", g.id);
        }
    }

    #[test]
    fn genes_concentrate_in_hotspots() {
        let (_, g, ann) = setup();
        let hotspots0 = g.hotspots(0);
        let on_chr1: Vec<_> = ann.genes_on("1").collect();
        let in_hs = on_chr1
            .iter()
            .filter(|gene| {
                let (s, _) = gene.span();
                hotspots0.iter().any(|&(lo, hi)| s >= lo && s < hi)
            })
            .count();
        assert!(
            in_hs * 2 > on_chr1.len(),
            "majority of genes should be in hotspots: {in_hs}/{}",
            on_chr1.len()
        );
    }

    #[test]
    fn novel_scaffolds_carry_genes() {
        let (_, _, ann) = setup();
        assert!(
            ann.genes.iter().any(|g| g.contig.starts_with("KN99")),
            "novel scaffolds must carry genes (the reason toplevel matters)"
        );
    }

    #[test]
    fn transcript_concatenates_exons_and_respects_strand() {
        let (a, _, _) = setup();
        let chrom = a.contig("1").unwrap();
        let gene = Gene {
            id: "G".into(),
            contig: "1".into(),
            strand: Strand::Forward,
            exons: vec![Exon { start: 10, end: 20 }, Exon { start: 50, end: 55 }],
        };
        let t = gene.transcript(&a).unwrap();
        assert_eq!(t.len(), 15);
        let mut expect = chrom.seq.subseq(10, 20);
        expect.extend_from(&chrom.seq.subseq(50, 55));
        assert_eq!(t, expect);

        let rev = Gene { strand: Strand::Reverse, ..gene };
        assert_eq!(rev.transcript(&a).unwrap(), expect.reverse_complement());
    }

    #[test]
    fn transcript_errors_on_missing_contig_or_bad_exon() {
        let (a, _, _) = setup();
        let g = Gene {
            id: "G".into(),
            contig: "nope".into(),
            strand: Strand::Forward,
            exons: vec![Exon { start: 0, end: 5 }],
        };
        assert!(g.transcript(&a).is_err());
        let g2 = Gene {
            id: "G2".into(),
            contig: "1".into(),
            strand: Strand::Forward,
            exons: vec![Exon { start: 0, end: usize::MAX / 2 }],
        };
        assert!(g2.transcript(&a).is_err());
    }

    #[test]
    fn validate_rejects_bad_exon_structures() {
        let bad_overlap = Gene {
            id: "B".into(),
            contig: "1".into(),
            strand: Strand::Forward,
            exons: vec![Exon { start: 0, end: 10 }, Exon { start: 5, end: 15 }],
        };
        assert!(bad_overlap.validate().is_err());
        let empty_exon = Gene {
            id: "E".into(),
            contig: "1".into(),
            strand: Strand::Forward,
            exons: vec![Exon { start: 3, end: 3 }],
        };
        assert!(empty_exon.validate().is_err());
        let no_exons =
            Gene { id: "N".into(), contig: "1".into(), strand: Strand::Forward, exons: vec![] };
        assert!(no_exons.validate().is_err());
    }

    #[test]
    fn gtf_rendering_is_one_based_inclusive() {
        let g = Gene {
            id: "X".into(),
            contig: "1".into(),
            strand: Strand::Reverse,
            exons: vec![Exon { start: 0, end: 10 }],
        };
        let gtf = Annotation { genes: vec![g] }.to_gtf();
        assert!(gtf.contains("\texon\t1\t10\t"), "{gtf}");
        assert!(gtf.contains("\t-\t"));
        assert!(gtf.contains("gene_id \"X\""));
    }

    #[test]
    fn annotation_is_deterministic() {
        let (_, _, a1) = setup();
        let (_, _, a2) = setup();
        assert_eq!(a1.genes, a2.genes);
    }
}
