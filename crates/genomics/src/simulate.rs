//! RNA-seq read simulators.
//!
//! Two library protocols matter to the paper:
//!
//! * **Bulk poly-A RNA-seq** — reads drawn along whole transcripts with log-normal
//!   per-gene expression; high mappable fraction (~90 %+). These are the accessions the
//!   Atlas keeps.
//! * **Single-cell 3' RNA-seq** — the libraries the paper's early stopping weeds out:
//!   a large fraction of each file is technical sequence (poly-A runs, adapter
//!   fragments, low-complexity repeats, random junk) and the informative reads cluster
//!   at transcript 3' ends, so the STAR mapping rate lands *below* the 30 % threshold
//!   and the alignment is worth aborting at the 10 %-of-reads checkpoint.
//!
//! Every read carries its ground-truth [`ReadOrigin`] so tests can score the aligner.

use crate::annotation::{Annotation, Gene};
use crate::fastq::FastqRecord;
use crate::genome::Assembly;
use crate::seq::{Base, DnaSeq};
use crate::GenomicsError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Library preparation protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LibraryType {
    /// Bulk poly-A selected RNA-seq (high mapping rate).
    BulkPolyA,
    /// Single-cell 3'-tag RNA-seq (low mapping rate; early-stop candidate).
    SingleCell3Prime,
}

/// Where a simulated read truly came from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReadOrigin {
    /// From the mature transcript of `gene_id`, at `offset` in transcript coordinates.
    Transcript { gene_id: String, offset: usize },
    /// From unspliced genomic sequence (intron/intergenic) of `contig` at `pos`.
    Genomic { contig: String, pos: usize },
    /// Technical/junk sequence that should NOT map.
    Junk(JunkClass),
}

/// Classes of non-mappable technical sequence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JunkClass {
    /// Poly-A homopolymer run.
    PolyA,
    /// Sequencing adapter fragments.
    Adapter,
    /// Dinucleotide low-complexity repeat.
    LowComplexity,
    /// Uniform random sequence (unmappable at read length).
    Random,
}

/// A read plus its ground truth.
#[derive(Clone, Debug)]
pub struct SimulatedRead {
    /// The FASTQ record as the pipeline sees it.
    pub fastq: FastqRecord,
    /// Ground-truth origin (not visible to the aligner).
    pub origin: ReadOrigin,
}

/// Tunable mixture weights and error model for a simulator.
#[derive(Clone, Debug)]
pub struct SimulatorParams {
    /// Read length in bases.
    pub read_len: usize,
    /// Per-base substitution error probability.
    pub error_rate: f64,
    /// Fraction of reads drawn from mature transcripts.
    pub exonic_fraction: f64,
    /// Fraction of reads drawn from unspliced genomic positions.
    pub genomic_fraction: f64,
    /// Remaining fraction is junk; mixture over junk classes below must sum to 1.
    pub junk_mix: [(JunkClass, f64); 4],
    /// Log-normal σ of per-gene expression weights.
    pub expression_sigma: f64,
    /// If `Some(bias_window)`, transcript sampling is restricted to the last
    /// `bias_window` bases (3' bias of single-cell protocols).
    pub three_prime_bias: Option<usize>,
    /// Base Phred quality of simulated calls.
    pub base_quality: u8,
    /// Mean insert (fragment) size for paired-end simulation.
    pub fragment_mean: f64,
    /// Standard deviation of the insert size.
    pub fragment_sd: f64,
}

impl SimulatorParams {
    /// Defaults for the given protocol, matching the module-level description.
    pub fn for_library(library: LibraryType) -> SimulatorParams {
        match library {
            LibraryType::BulkPolyA => SimulatorParams {
                read_len: 100,
                error_rate: 0.004,
                exonic_fraction: 0.82,
                genomic_fraction: 0.12,
                junk_mix: [
                    (JunkClass::PolyA, 0.25),
                    (JunkClass::Adapter, 0.35),
                    (JunkClass::LowComplexity, 0.15),
                    (JunkClass::Random, 0.25),
                ],
                expression_sigma: 1.0,
                three_prime_bias: None,
                base_quality: 36,
                fragment_mean: 250.0,
                fragment_sd: 40.0,
            },
            LibraryType::SingleCell3Prime => SimulatorParams {
                read_len: 100,
                error_rate: 0.008,
                exonic_fraction: 0.20,
                genomic_fraction: 0.05,
                junk_mix: [
                    (JunkClass::PolyA, 0.40),
                    (JunkClass::Adapter, 0.25),
                    (JunkClass::LowComplexity, 0.20),
                    (JunkClass::Random, 0.15),
                ],
                expression_sigma: 1.6,
                three_prime_bias: Some(400),
                base_quality: 33,
                fragment_mean: 250.0,
                fragment_sd: 40.0,
            },
        }
    }

    /// Validate mixture weights.
    pub fn validate(&self) -> Result<(), GenomicsError> {
        if self.read_len == 0 {
            return Err(GenomicsError::InvalidParams("read_len must be positive".into()));
        }
        if self.exonic_fraction < 0.0
            || self.genomic_fraction < 0.0
            || self.exonic_fraction + self.genomic_fraction > 1.0
        {
            return Err(GenomicsError::InvalidParams("exonic+genomic fractions must fit in [0,1]".into()));
        }
        let junk_sum: f64 = self.junk_mix.iter().map(|&(_, w)| w).sum();
        if (junk_sum - 1.0).abs() > 1e-9 {
            return Err(GenomicsError::InvalidParams(format!("junk mixture sums to {junk_sum}, not 1")));
        }
        if !(0.0..=0.5).contains(&self.error_rate) {
            return Err(GenomicsError::InvalidParams("error_rate outside [0, 0.5]".into()));
        }
        if self.fragment_mean < self.read_len as f64 || self.fragment_sd < 0.0 {
            return Err(GenomicsError::InvalidParams(
                "fragment_mean must be >= read_len and fragment_sd >= 0".into(),
            ));
        }
        Ok(())
    }
}

/// A paired-end read (FR orientation) plus its ground truth.
#[derive(Clone, Debug)]
pub struct PairedRead {
    /// First mate (5' end of the fragment).
    pub r1: FastqRecord,
    /// Second mate (reverse-complemented 3' end of the fragment).
    pub r2: FastqRecord,
    /// Ground-truth origin of the *fragment*.
    pub origin: ReadOrigin,
    /// True fragment length (0 for junk pairs).
    pub fragment_len: usize,
}

/// Illumina TruSeq-like adapter used for [`JunkClass::Adapter`] reads.
const ADAPTER: &str = "AGATCGGAAGAGCACACGTCTGAACTCCAGTCA";

/// A seeded read simulator bound to one assembly + annotation.
pub struct ReadSimulator<'a> {
    assembly: &'a Assembly,
    params: SimulatorParams,
    rng: StdRng,
    /// (gene, transcript sequence, cumulative expression weight) — genes whose
    /// transcript is long enough to yield a full-length read.
    transcripts: Vec<(&'a Gene, DnaSeq, f64)>,
    total_weight: f64,
}

impl<'a> ReadSimulator<'a> {
    /// Build a simulator. Extracts and caches all transcript sequences.
    pub fn new(
        assembly: &'a Assembly,
        annotation: &'a Annotation,
        params: SimulatorParams,
        seed: u64,
    ) -> Result<ReadSimulator<'a>, GenomicsError> {
        params.validate()?;
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0xA076_1D64_78BD_642F));
        let mut transcripts = Vec::new();
        let mut cum = 0.0f64;
        for gene in &annotation.genes {
            let t = gene.transcript(assembly)?;
            if t.len() >= params.read_len {
                // Log-normal expression weight, deterministic per gene order.
                let w = lognormal(&mut rng, 0.0, params.expression_sigma);
                cum += w;
                transcripts.push((gene, t, cum));
            }
        }
        if transcripts.is_empty() && params.exonic_fraction > 0.0 {
            return Err(GenomicsError::InvalidParams(
                "no transcript is long enough for the requested read length".into(),
            ));
        }
        Ok(ReadSimulator { assembly, params, rng, transcripts, total_weight: cum })
    }

    /// The parameters in use.
    pub fn params(&self) -> &SimulatorParams {
        &self.params
    }

    /// Simulate `n` reads with ids `"{prefix}.{i}"`.
    pub fn simulate(&mut self, n: usize, prefix: &str) -> Vec<SimulatedRead> {
        (0..n).map(|i| self.one_read(format!("{prefix}.{}", i + 1))).collect()
    }

    /// Simulate `n` read *pairs* in Illumina FR orientation: R1 is the fragment's 5'
    /// end on the fragment strand, R2 the reverse complement of its 3' end. Fragment
    /// lengths are Gaussian (`fragment_mean`, `fragment_sd`), clamped to
    /// `[read_len, source length]`. Junk fragments produce junk on both mates.
    pub fn simulate_pairs(&mut self, n: usize, prefix: &str) -> Vec<PairedRead> {
        (0..n).map(|i| self.one_pair(format!("{prefix}.{}", i + 1))).collect()
    }

    fn one_pair(&mut self, id: String) -> PairedRead {
        let p = self.params.clone();
        let roll: f64 = self.rng.gen();
        let (fragment, origin) = if roll < p.exonic_fraction && !self.transcripts.is_empty() {
            self.transcript_fragment()
        } else if roll < p.exonic_fraction + p.genomic_fraction {
            self.genomic_fragment()
        } else {
            // Junk pair: two independent junk reads of one class.
            let (s1, origin) = self.junk_read();
            let (s2, _) = self.junk_read();
            let r1 = FastqRecord::with_uniform_quality(format!("{id}/1"), s1, p.base_quality);
            let r2 = FastqRecord::with_uniform_quality(format!("{id}/2"), s2, p.base_quality);
            return PairedRead { r1, r2, origin, fragment_len: 0 };
        };
        let flen = fragment.len();
        let mut m1 = fragment.subseq(0, p.read_len);
        let mut m2 = fragment.subseq(flen - p.read_len, flen).reverse_complement();
        apply_errors(&mut m1, p.error_rate, &mut self.rng);
        apply_errors(&mut m2, p.error_rate, &mut self.rng);
        // The fragment itself comes off either strand of the cDNA: swap mates.
        if self.rng.gen_bool(0.5) {
            std::mem::swap(&mut m1, &mut m2);
        }
        PairedRead {
            r1: FastqRecord::with_uniform_quality(format!("{id}/1"), m1, p.base_quality),
            r2: FastqRecord::with_uniform_quality(format!("{id}/2"), m2, p.base_quality),
            origin,
            fragment_len: flen,
        }
    }

    /// Draw a fragment length (Gaussian, clamped to `[read_len, cap]`).
    fn fragment_len(&mut self, cap: usize) -> usize {
        let p = &self.params;
        let u1: f64 = self.rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = self.rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let len = (p.fragment_mean + p.fragment_sd * z).round() as i64;
        (len.max(p.read_len as i64) as usize).min(cap)
    }

    fn transcript_fragment(&mut self) -> (DnaSeq, ReadOrigin) {
        let x: f64 = self.rng.gen::<f64>() * self.total_weight;
        let idx = self.transcripts.partition_point(|&(_, _, cum)| cum < x).min(self.transcripts.len() - 1);
        let t_len = self.transcripts[idx].1.len();
        let flen = self.fragment_len(t_len);
        let max_start = t_len - flen;
        let lo = match self.params.three_prime_bias {
            Some(window) if t_len > window => t_len.saturating_sub(window).min(max_start),
            _ => 0,
        };
        let start = if max_start > lo { self.rng.gen_range(lo..=max_start) } else { lo.min(max_start) };
        let (gene, t, _) = &self.transcripts[idx];
        (
            t.subseq(start, start + flen),
            ReadOrigin::Transcript { gene_id: gene.id.clone(), offset: start },
        )
    }

    fn genomic_fragment(&mut self) -> (DnaSeq, ReadOrigin) {
        let read_len = self.params.read_len;
        let chroms: Vec<usize> = self
            .assembly
            .contigs
            .iter()
            .enumerate()
            .filter(|(_, c)| c.kind == crate::ContigKind::Chromosome && c.len() > 2 * read_len)
            .map(|(i, _)| i)
            .collect();
        if chroms.is_empty() {
            let (s, o) = self.junk_read();
            return (s, o);
        }
        let ci = chroms[self.rng.gen_range(0..chroms.len())];
        let chrom = &self.assembly.contigs[ci];
        let flen = self.fragment_len(chrom.len());
        let pos = self.rng.gen_range(0..chrom.len() - flen);
        (
            chrom.seq.subseq(pos, pos + flen),
            ReadOrigin::Genomic { contig: chrom.name.clone(), pos },
        )
    }

    fn one_read(&mut self, id: String) -> SimulatedRead {
        let p = self.params.clone();
        let roll: f64 = self.rng.gen();
        let (mut seq, origin) = if roll < p.exonic_fraction && !self.transcripts.is_empty() {
            self.transcript_read()
        } else if roll < p.exonic_fraction + p.genomic_fraction {
            self.genomic_read()
        } else {
            self.junk_read()
        };
        apply_errors(&mut seq, p.error_rate, &mut self.rng);
        // Reads come off either strand of the cDNA.
        if self.rng.gen_bool(0.5) {
            seq = seq.reverse_complement();
        }
        SimulatedRead { fastq: FastqRecord::with_uniform_quality(id, seq, p.base_quality), origin }
    }

    fn transcript_read(&mut self) -> (DnaSeq, ReadOrigin) {
        let p = &self.params;
        // Weighted gene choice via binary search on cumulative weights.
        let x: f64 = self.rng.gen::<f64>() * self.total_weight;
        let idx = self.transcripts.partition_point(|&(_, _, cum)| cum < x).min(self.transcripts.len() - 1);
        let (gene, t, _) = &self.transcripts[idx];
        let max_start = t.len() - p.read_len;
        let lo = match p.three_prime_bias {
            Some(window) if t.len() > window => t.len().saturating_sub(window).min(max_start),
            _ => 0,
        };
        let start = if max_start > lo { self.rng.gen_range(lo..=max_start) } else { lo.min(max_start) };
        (
            t.subseq(start, start + p.read_len),
            ReadOrigin::Transcript { gene_id: gene.id.clone(), offset: start },
        )
    }

    fn genomic_read(&mut self) -> (DnaSeq, ReadOrigin) {
        let p = &self.params;
        // Sample a chromosome weighted by length (scaffolds excluded: reads come from
        // the cell, and the cell transcribes chromosomal loci).
        let chroms: Vec<_> = self.assembly.chromosomes().filter(|c| c.len() > p.read_len).collect();
        if chroms.is_empty() {
            return self.junk_read();
        }
        let total: usize = chroms.iter().map(|c| c.len()).sum();
        let mut x = self.rng.gen_range(0..total);
        let mut chosen = chroms[0];
        for c in &chroms {
            if x < c.len() {
                chosen = c;
                break;
            }
            x -= c.len();
        }
        let pos = self.rng.gen_range(0..chosen.len() - p.read_len);
        (
            chosen.seq.subseq(pos, pos + p.read_len),
            ReadOrigin::Genomic { contig: chosen.name.clone(), pos },
        )
    }

    fn junk_read(&mut self) -> (DnaSeq, ReadOrigin) {
        let p = self.params.clone();
        let x: f64 = self.rng.gen();
        let mut acc = 0.0;
        let mut class = JunkClass::Random;
        for &(c, w) in &p.junk_mix {
            acc += w;
            if x < acc {
                class = c;
                break;
            }
        }
        let seq = match class {
            JunkClass::PolyA => DnaSeq::from_codes(vec![Base::A.code(); p.read_len]),
            JunkClass::Adapter => {
                // Adapter fragment tiled to read length.
                let adapter: DnaSeq = ADAPTER.parse().expect("static adapter parses");
                let mut s = DnaSeq::with_capacity(p.read_len);
                while s.len() < p.read_len {
                    let take = (p.read_len - s.len()).min(adapter.len());
                    s.extend_from(&adapter.subseq(0, take));
                }
                s
            }
            JunkClass::LowComplexity => {
                // Random dinucleotide repeated, e.g. CACACA...
                let a = Base::random(&mut self.rng);
                let mut b = Base::random(&mut self.rng);
                while b == a {
                    b = Base::random(&mut self.rng);
                }
                let mut s = DnaSeq::with_capacity(p.read_len);
                for i in 0..p.read_len {
                    s.push(if i % 2 == 0 { a } else { b });
                }
                s
            }
            JunkClass::Random => DnaSeq::random(&mut self.rng, p.read_len),
        };
        (seq, ReadOrigin::Junk(class))
    }
}

/// In-place i.i.d. substitution errors.
fn apply_errors<R: Rng + ?Sized>(seq: &mut DnaSeq, rate: f64, rng: &mut R) {
    if rate <= 0.0 {
        return;
    }
    let mut codes = seq.codes().to_vec();
    for c in codes.iter_mut() {
        if rng.gen_bool(rate) {
            *c = (*c + rng.gen_range(1..4u8)) % 4;
        }
    }
    *seq = DnaSeq::from_codes(codes);
}

/// Sample exp(N(mu, sigma²)) via Box–Muller (avoids a rand_distr dependency).
fn lognormal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (mu + sigma * z).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotation::AnnotationParams;
    use crate::ensembl::{EnsemblGenerator, EnsemblParams, Release};

    fn setup() -> (Assembly, Annotation) {
        let g = EnsemblGenerator::new(EnsemblParams::tiny()).unwrap();
        let a = g.generate(Release::R111);
        let ann = Annotation::simulate(&a, &g, &AnnotationParams::default()).unwrap();
        (a, ann)
    }

    #[test]
    fn bulk_reads_are_mostly_transcriptomic() {
        let (a, ann) = setup();
        let mut sim =
            ReadSimulator::new(&a, &ann, SimulatorParams::for_library(LibraryType::BulkPolyA), 1).unwrap();
        let reads = sim.simulate(2000, "SRRTEST");
        let exonic = reads
            .iter()
            .filter(|r| matches!(r.origin, ReadOrigin::Transcript { .. }))
            .count() as f64
            / reads.len() as f64;
        assert!((0.75..0.90).contains(&exonic), "exonic fraction {exonic}");
        assert!(reads.iter().all(|r| r.fastq.seq.len() == 100));
        assert_eq!(reads[0].fastq.id, "SRRTEST.1");
    }

    #[test]
    fn single_cell_reads_are_mostly_junk() {
        let (a, ann) = setup();
        let mut sim = ReadSimulator::new(
            &a,
            &ann,
            SimulatorParams::for_library(LibraryType::SingleCell3Prime),
            1,
        )
        .unwrap();
        let reads = sim.simulate(2000, "SRRSC");
        let junk = reads.iter().filter(|r| matches!(r.origin, ReadOrigin::Junk(_))).count() as f64
            / reads.len() as f64;
        assert!(junk > 0.65, "junk fraction {junk}");
    }

    #[test]
    fn three_prime_bias_restricts_offsets() {
        let (a, ann) = setup();
        let mut p = SimulatorParams::for_library(LibraryType::SingleCell3Prime);
        p.exonic_fraction = 1.0;
        p.genomic_fraction = 0.0;
        let window = p.three_prime_bias.unwrap();
        let mut sim = ReadSimulator::new(&a, &ann, p.clone(), 3).unwrap();
        for r in sim.simulate(500, "SRRB") {
            if let ReadOrigin::Transcript { gene_id, offset } = &r.origin {
                let t_len = ann.gene(gene_id).unwrap().transcript_len();
                if t_len > window {
                    assert!(
                        *offset >= t_len - window,
                        "offset {offset} violates 3' bias (len {t_len})"
                    );
                }
            }
        }
    }

    #[test]
    fn transcript_reads_match_source_without_errors() {
        let (a, ann) = setup();
        let mut p = SimulatorParams::for_library(LibraryType::BulkPolyA);
        p.error_rate = 0.0;
        p.exonic_fraction = 1.0;
        p.genomic_fraction = 0.0;
        let mut sim = ReadSimulator::new(&a, &ann, p, 9).unwrap();
        for r in sim.simulate(100, "SRRX") {
            if let ReadOrigin::Transcript { gene_id, offset } = &r.origin {
                let t = ann.gene(gene_id).unwrap().transcript(&a).unwrap();
                let expect = t.subseq(*offset, offset + 100);
                let got = &r.fastq.seq;
                assert!(
                    *got == expect || got.reverse_complement() == expect,
                    "read does not match its declared origin"
                );
            }
        }
    }

    #[test]
    fn error_rate_perturbs_roughly_expected_fraction() {
        let (a, ann) = setup();
        let mut p = SimulatorParams::for_library(LibraryType::BulkPolyA);
        p.error_rate = 0.05;
        p.exonic_fraction = 1.0;
        p.genomic_fraction = 0.0;
        let mut sim = ReadSimulator::new(&a, &ann, p, 11).unwrap();
        let mut mismatches = 0usize;
        let mut total = 0usize;
        for r in sim.simulate(300, "SRRE") {
            if let ReadOrigin::Transcript { gene_id, offset } = &r.origin {
                let t = ann.gene(gene_id).unwrap().transcript(&a).unwrap();
                let expect = t.subseq(*offset, offset + 100);
                let fwd_id = r.fastq.seq.identity(&expect);
                let rev_id = r.fastq.seq.reverse_complement().identity(&expect);
                let best = fwd_id.max(rev_id);
                mismatches += ((1.0 - best) * 100.0).round() as usize;
                total += 100;
            }
        }
        let observed = mismatches as f64 / total as f64;
        assert!((0.02..0.08).contains(&observed), "observed error rate {observed}");
    }

    #[test]
    fn junk_classes_follow_mixture() {
        let (a, ann) = setup();
        let mut p = SimulatorParams::for_library(LibraryType::SingleCell3Prime);
        p.exonic_fraction = 0.0;
        p.genomic_fraction = 0.0;
        p.error_rate = 0.0;
        let mut sim = ReadSimulator::new(&a, &ann, p, 17).unwrap();
        let reads = sim.simulate(2000, "SRRJ");
        let polya = reads
            .iter()
            .filter(|r| matches!(r.origin, ReadOrigin::Junk(JunkClass::PolyA)))
            .count() as f64
            / reads.len() as f64;
        assert!((0.33..0.47).contains(&polya), "polyA fraction {polya} (expected ≈0.40)");
        // PolyA reads really are homopolymers (possibly reverse-complemented to polyT).
        let pa = reads
            .iter()
            .find(|r| matches!(r.origin, ReadOrigin::Junk(JunkClass::PolyA)))
            .unwrap();
        let s = pa.fastq.seq.to_string();
        assert!(s.chars().all(|c| c == 'A') || s.chars().all(|c| c == 'T'));
    }

    #[test]
    fn paired_fragments_have_gaussian_lengths_and_fr_orientation() {
        let (a, ann) = setup();
        let mut p = SimulatorParams::for_library(LibraryType::BulkPolyA);
        p.exonic_fraction = 1.0;
        p.genomic_fraction = 0.0;
        p.error_rate = 0.0;
        let mut sim = ReadSimulator::new(&a, &ann, p.clone(), 21).unwrap();
        let pairs = sim.simulate_pairs(400, "PP");
        let mut lens = Vec::new();
        for pair in &pairs {
            assert_eq!(pair.r1.seq.len(), 100);
            assert_eq!(pair.r2.seq.len(), 100);
            assert!(pair.r1.id.ends_with("/1"));
            assert!(pair.r2.id.ends_with("/2"));
            let ReadOrigin::Transcript { gene_id, offset } = &pair.origin else {
                panic!("exonic only")
            };
            let t = ann.gene(gene_id).unwrap().transcript(&a).unwrap();
            let frag = t.subseq(*offset, offset + pair.fragment_len);
            // FR orientation: one mate is the fragment 5' prefix, the other the
            // reverse complement of the 3' suffix (mates may be swapped).
            let m5 = frag.subseq(0, 100);
            let m3 = frag.subseq(frag.len() - 100, frag.len()).reverse_complement();
            let fr = pair.r1.seq == m5 && pair.r2.seq == m3;
            let rf = pair.r1.seq == m3 && pair.r2.seq == m5;
            assert!(fr || rf, "pair must be the fragment's two ends");
            // Fragment lengths clamp to the transcript, so only transcripts long
            // enough that the clamp can't bite (mean + ~4σ) test the Gaussian.
            if t.len() >= 400 {
                lens.push(pair.fragment_len as f64);
            }
        }
        assert!(lens.len() >= 30, "want unclamped fragments, got {}", lens.len());
        let mean = lens.iter().sum::<f64>() / lens.len() as f64;
        assert!((mean - 250.0).abs() < 25.0, "fragment mean {mean} over {}", lens.len());
        assert!(lens.iter().all(|&l| l >= 100.0));
    }

    #[test]
    fn junk_pairs_have_zero_fragment_len() {
        let (a, ann) = setup();
        let mut p = SimulatorParams::for_library(LibraryType::SingleCell3Prime);
        p.exonic_fraction = 0.0;
        p.genomic_fraction = 0.0;
        let mut sim = ReadSimulator::new(&a, &ann, p, 22).unwrap();
        let pairs = sim.simulate_pairs(50, "JP");
        assert!(pairs.iter().all(|x| x.fragment_len == 0));
        assert!(pairs.iter().all(|x| matches!(x.origin, ReadOrigin::Junk(_))));
    }

    #[test]
    fn invalid_fragment_params_rejected() {
        let mut p = SimulatorParams::for_library(LibraryType::BulkPolyA);
        p.fragment_mean = 50.0; // < read_len 100
        assert!(p.validate().is_err());
        let mut p = SimulatorParams::for_library(LibraryType::BulkPolyA);
        p.fragment_sd = -1.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn simulator_is_deterministic() {
        let (a, ann) = setup();
        let p = SimulatorParams::for_library(LibraryType::BulkPolyA);
        let r1 = ReadSimulator::new(&a, &ann, p.clone(), 5).unwrap().simulate(50, "S");
        let r2 = ReadSimulator::new(&a, &ann, p, 5).unwrap().simulate(50, "S");
        for (x, y) in r1.iter().zip(&r2) {
            assert_eq!(x.fastq, y.fastq);
            assert_eq!(x.origin, y.origin);
        }
    }

    #[test]
    fn invalid_params_rejected() {
        let mut p = SimulatorParams::for_library(LibraryType::BulkPolyA);
        p.exonic_fraction = 0.9;
        p.genomic_fraction = 0.2;
        assert!(p.validate().is_err());
        let mut p = SimulatorParams::for_library(LibraryType::BulkPolyA);
        p.junk_mix[0].1 = 0.9;
        assert!(p.validate().is_err());
        let mut p = SimulatorParams::for_library(LibraryType::BulkPolyA);
        p.read_len = 0;
        assert!(p.validate().is_err());
    }
}
