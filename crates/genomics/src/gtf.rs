//! GTF-lite parser — the inverse of [`crate::Annotation::to_gtf`].
//!
//! Parses the exon rows of a GTF stream into an [`Annotation`]: tab-separated
//! columns `contig, source, feature, start(1-based), end(inclusive), score, strand,
//! frame, attributes`, keeping `feature == "exon"` rows and grouping them by the
//! `gene_id` attribute. Enough of the format for `--sjdbGTFfile`-style index
//! construction; full GTF semantics (transcripts, CDS, phase) are out of scope.

use crate::annotation::{Annotation, Exon, Gene, Strand};
use crate::GenomicsError;
use std::collections::HashMap;
use std::io::BufRead;

/// Parse an annotation from GTF text. Unknown feature rows are skipped; malformed
/// exon rows are errors.
pub fn read_gtf<R: BufRead>(reader: R) -> Result<Annotation, GenomicsError> {
    // gene_id -> (contig, strand, exons); insertion order preserved separately.
    let mut genes: HashMap<String, (String, Strand, Vec<Exon>)> = HashMap::new();
    let mut order: Vec<String> = Vec::new();

    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let cols: Vec<&str> = line.split('\t').collect();
        if cols.len() < 9 {
            return Err(GenomicsError::Format(format!(
                "line {}: expected 9 tab-separated columns, got {}",
                lineno + 1,
                cols.len()
            )));
        }
        if cols[2] != "exon" {
            continue;
        }
        let start: usize = cols[3]
            .parse()
            .map_err(|_| GenomicsError::Format(format!("line {}: bad start {:?}", lineno + 1, cols[3])))?;
        let end: usize = cols[4]
            .parse()
            .map_err(|_| GenomicsError::Format(format!("line {}: bad end {:?}", lineno + 1, cols[4])))?;
        if start == 0 || end < start {
            return Err(GenomicsError::Format(format!(
                "line {}: invalid 1-based interval {start}..{end}",
                lineno + 1
            )));
        }
        let strand = match cols[6] {
            "+" => Strand::Forward,
            "-" => Strand::Reverse,
            other => {
                return Err(GenomicsError::Format(format!("line {}: bad strand {other:?}", lineno + 1)))
            }
        };
        let gene_id = parse_attribute(cols[8], "gene_id").ok_or_else(|| {
            GenomicsError::Format(format!("line {}: missing gene_id attribute", lineno + 1))
        })?;

        let entry = genes.entry(gene_id.clone()).or_insert_with(|| {
            order.push(gene_id.clone());
            (cols[0].to_string(), strand, Vec::new())
        });
        if entry.0 != cols[0] || entry.1 != strand {
            return Err(GenomicsError::Format(format!(
                "line {}: gene {gene_id} spans multiple contigs/strands",
                lineno + 1
            )));
        }
        // GTF is 1-based inclusive → half-open 0-based.
        entry.2.push(Exon { start: start - 1, end });
    }

    let mut out = Vec::with_capacity(order.len());
    for id in order {
        let (contig, strand, mut exons) = genes.remove(&id).expect("collected above");
        exons.sort_by_key(|e| e.start);
        let gene = Gene { id, contig, strand, exons };
        gene.validate()?;
        out.push(gene);
    }
    Ok(Annotation { genes: out })
}

/// Extract a quoted GTF attribute value, e.g. `gene_id "X";` → `X`.
fn parse_attribute(attributes: &str, key: &str) -> Option<String> {
    for field in attributes.split(';') {
        let field = field.trim();
        if let Some(rest) = field.strip_prefix(key) {
            let rest = rest.trim_start();
            let rest = rest.strip_prefix('"')?;
            let end = rest.find('"')?;
            return Some(rest[..end].to_string());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotation::AnnotationParams;
    use crate::ensembl::{EnsemblGenerator, EnsemblParams, Release};
    use std::io::Cursor;

    #[test]
    fn round_trips_simulated_annotation() {
        let g = EnsemblGenerator::new(EnsemblParams::tiny()).unwrap();
        let asm = g.generate(Release::R111);
        let ann = Annotation::simulate(&asm, &g, &AnnotationParams::default()).unwrap();
        let text = ann.to_gtf();
        let back = read_gtf(Cursor::new(text.as_bytes())).unwrap();
        assert_eq!(back.genes, ann.genes);
    }

    #[test]
    fn parses_minimal_hand_written_gtf() {
        let text = "# comment\n\
                    1\tsim\texon\t11\t20\t.\t+\t.\tgene_id \"G1\"; exon_number 1;\n\
                    1\tsim\tCDS\t11\t20\t.\t+\t.\tgene_id \"G1\";\n\
                    1\tsim\texon\t51\t60\t.\t+\t.\tgene_id \"G1\"; exon_number 2;\n\
                    2\tsim\texon\t1\t9\t.\t-\t.\tgene_id \"G2\";\n";
        let ann = read_gtf(Cursor::new(text.as_bytes())).unwrap();
        assert_eq!(ann.genes.len(), 2);
        let g1 = ann.gene("G1").unwrap();
        assert_eq!(g1.exons, vec![Exon { start: 10, end: 20 }, Exon { start: 50, end: 60 }]);
        assert_eq!(g1.strand, Strand::Forward);
        let g2 = ann.gene("G2").unwrap();
        assert_eq!(g2.exons, vec![Exon { start: 0, end: 9 }]);
        assert_eq!(g2.strand, Strand::Reverse);
    }

    #[test]
    fn exons_are_sorted_even_when_listed_out_of_order() {
        let text = "1\ts\texon\t51\t60\t.\t+\t.\tgene_id \"G\";\n\
                    1\ts\texon\t11\t20\t.\t+\t.\tgene_id \"G\";\n";
        let ann = read_gtf(Cursor::new(text.as_bytes())).unwrap();
        assert_eq!(ann.genes[0].exons[0].start, 10);
    }

    #[test]
    fn rejects_malformed_rows() {
        // Too few columns.
        assert!(read_gtf(Cursor::new(b"1\ts\texon\t1\t2\n".as_slice())).is_err());
        // Bad coordinates.
        assert!(read_gtf(Cursor::new(
            b"1\ts\texon\t0\t5\t.\t+\t.\tgene_id \"G\";\n".as_slice()
        ))
        .is_err());
        assert!(read_gtf(Cursor::new(
            b"1\ts\texon\t9\t5\t.\t+\t.\tgene_id \"G\";\n".as_slice()
        ))
        .is_err());
        // Bad strand.
        assert!(read_gtf(Cursor::new(
            b"1\ts\texon\t1\t5\t.\t?\t.\tgene_id \"G\";\n".as_slice()
        ))
        .is_err());
        // Missing gene_id.
        assert!(read_gtf(Cursor::new(
            b"1\ts\texon\t1\t5\t.\t+\t.\ttranscript_id \"T\";\n".as_slice()
        ))
        .is_err());
        // Gene hopping contigs.
        let text = "1\ts\texon\t1\t5\t.\t+\t.\tgene_id \"G\";\n\
                    2\ts\texon\t1\t5\t.\t+\t.\tgene_id \"G\";\n";
        assert!(read_gtf(Cursor::new(text.as_bytes())).is_err());
    }

    #[test]
    fn attribute_parser_handles_spacing_variants() {
        assert_eq!(parse_attribute("gene_id \"X\"; foo \"y\";", "gene_id").as_deref(), Some("X"));
        assert_eq!(parse_attribute("foo \"y\";gene_id    \"Z\"", "gene_id").as_deref(), Some("Z"));
        assert_eq!(parse_attribute("foo \"y\";", "gene_id"), None);
        assert_eq!(parse_attribute("gene_id X;", "gene_id"), None, "unquoted values rejected");
    }

    #[test]
    fn empty_input_is_an_empty_annotation() {
        let ann = read_gtf(Cursor::new(b"".as_slice())).unwrap();
        assert!(ann.is_empty());
    }
}
