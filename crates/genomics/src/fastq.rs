//! Minimal FASTQ reader/writer.
//!
//! FASTQ is the hand-off format between `fasterq-dump` and STAR (pipeline steps 2→3).
//! Quality scores use the Sanger/Illumina 1.8+ Phred+33 encoding.

use crate::seq::{Base, DnaSeq};
use crate::GenomicsError;
use std::io::{BufRead, Write};

/// Phred+33 offset used by modern Illumina FASTQ.
pub const PHRED_OFFSET: u8 = 33;
/// Highest Phred score we emit (`'I'` = Q40), matching Illumina RTA3 binning.
pub const MAX_PHRED: u8 = 40;

/// One FASTQ record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FastqRecord {
    /// Read identifier (text after `@`, up to end of line).
    pub id: String,
    /// Base calls.
    pub seq: DnaSeq,
    /// Per-base Phred quality scores (NOT ASCII-encoded; encoding happens on write).
    pub qual: Vec<u8>,
}

impl FastqRecord {
    /// Construct with a uniform quality score applied to every base.
    pub fn with_uniform_quality(id: String, seq: DnaSeq, phred: u8) -> FastqRecord {
        let qual = vec![phred.min(MAX_PHRED); seq.len()];
        FastqRecord { id, seq, qual }
    }

    /// Mean Phred quality of the read (0 for an empty read).
    pub fn mean_quality(&self) -> f64 {
        if self.qual.is_empty() {
            return 0.0;
        }
        self.qual.iter().map(|&q| q as f64).sum::<f64>() / self.qual.len() as f64
    }
}

/// Read all records from a FASTQ stream.
pub fn read_fastq<R: BufRead>(reader: R) -> Result<Vec<FastqRecord>, GenomicsError> {
    let mut lines = reader.lines();
    let mut records = Vec::new();
    loop {
        let head = match lines.next() {
            None => break,
            Some(l) => l?,
        };
        if head.trim().is_empty() {
            continue;
        }
        let id = head
            .strip_prefix('@')
            .ok_or_else(|| GenomicsError::Format(format!("expected '@' header, got {head:?}")))?
            .to_string();
        let seq_line = next_line(&mut lines, "sequence")?;
        let plus = next_line(&mut lines, "'+' separator")?;
        if !plus.starts_with('+') {
            return Err(GenomicsError::Format(format!("expected '+' separator, got {plus:?}")));
        }
        let qual_line = next_line(&mut lines, "quality")?;
        if qual_line.len() != seq_line.len() {
            return Err(GenomicsError::Format(format!(
                "quality length {} != sequence length {} for read {id}",
                qual_line.len(),
                seq_line.len()
            )));
        }
        let mut seq = DnaSeq::with_capacity(seq_line.len());
        for c in seq_line.chars() {
            match Base::from_char(c) {
                Some(b) => seq.push(b),
                // Ns in reads are substituted like the FASTA reader does.
                None if c.is_ascii_alphabetic() => seq.push(Base::A),
                None => return Err(GenomicsError::InvalidBase(c)),
            }
        }
        let qual = qual_line
            .bytes()
            .map(|b| {
                b.checked_sub(PHRED_OFFSET)
                    .ok_or_else(|| GenomicsError::Format(format!("quality char below '!' in read {id}")))
            })
            .collect::<Result<Vec<u8>, _>>()?;
        records.push(FastqRecord { id, seq, qual });
    }
    Ok(records)
}

fn next_line<I: Iterator<Item = std::io::Result<String>>>(
    lines: &mut I,
    what: &str,
) -> Result<String, GenomicsError> {
    match lines.next() {
        Some(l) => Ok(l?),
        None => Err(GenomicsError::Format(format!("truncated record: missing {what} line"))),
    }
}

/// Write records in 4-line FASTQ format.
pub fn write_fastq<W: Write>(mut w: W, records: &[FastqRecord]) -> Result<(), GenomicsError> {
    for rec in records {
        debug_assert_eq!(rec.seq.len(), rec.qual.len(), "seq/qual length mismatch");
        writeln!(w, "@{}", rec.id)?;
        writeln!(w, "{}", rec.seq)?;
        writeln!(w, "+")?;
        let encoded: Vec<u8> = rec.qual.iter().map(|&q| q.min(MAX_PHRED + 2) + PHRED_OFFSET).collect();
        w.write_all(&encoded)?;
        w.write_all(b"\n")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn round_trips_records() {
        let recs = vec![
            FastqRecord::with_uniform_quality("r1 extra".into(), "ACGT".parse().unwrap(), 30),
            FastqRecord { id: "r2".into(), seq: "GG".parse().unwrap(), qual: vec![0, 40] },
        ];
        let mut buf = Vec::new();
        write_fastq(&mut buf, &recs).unwrap();
        let back = read_fastq(Cursor::new(&buf)).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn rejects_malformed_records() {
        // Missing quality line.
        assert!(read_fastq(Cursor::new(b"@r\nACGT\n+\n".as_slice())).is_err());
        // Wrong separator.
        assert!(read_fastq(Cursor::new(b"@r\nACGT\n-\nIIII\n".as_slice())).is_err());
        // Quality/sequence length mismatch.
        assert!(read_fastq(Cursor::new(b"@r\nACGT\n+\nIII\n".as_slice())).is_err());
        // Header without '@'.
        assert!(read_fastq(Cursor::new(b"r\nACGT\n+\nIIII\n".as_slice())).is_err());
    }

    #[test]
    fn substitutes_n_in_reads() {
        let recs = read_fastq(Cursor::new(b"@r\nACNT\n+\nIIII\n".as_slice())).unwrap();
        assert_eq!(recs[0].seq.to_string(), "ACAT");
    }

    #[test]
    fn mean_quality_is_arithmetic_mean() {
        let r = FastqRecord { id: "x".into(), seq: "AC".parse().unwrap(), qual: vec![10, 30] };
        assert!((r.mean_quality() - 20.0).abs() < 1e-12);
        let empty = FastqRecord { id: "e".into(), seq: DnaSeq::new(), qual: vec![] };
        assert_eq!(empty.mean_quality(), 0.0);
    }

    #[test]
    fn skips_blank_lines_between_records() {
        let recs = read_fastq(Cursor::new(b"@a\nAC\n+\nII\n\n@b\nGT\n+\nII\n".as_slice())).unwrap();
        assert_eq!(recs.len(), 2);
    }
}
