//! Error type shared by the parsing and generation routines of this crate.

use std::fmt;

/// Errors produced while parsing sequence formats or constructing assemblies.
#[derive(Debug)]
pub enum GenomicsError {
    /// An I/O error from an underlying reader or writer.
    Io(std::io::Error),
    /// A FASTA/FASTQ record violated the format (context in the message).
    Format(String),
    /// A character outside the DNA alphabet was encountered.
    InvalidBase(char),
    /// A request referenced a contig/gene that does not exist.
    NotFound(String),
    /// Parameters given to a generator were inconsistent.
    InvalidParams(String),
}

impl fmt::Display for GenomicsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenomicsError::Io(e) => write!(f, "i/o error: {e}"),
            GenomicsError::Format(m) => write!(f, "format error: {m}"),
            GenomicsError::InvalidBase(c) => write!(f, "invalid base character: {c:?}"),
            GenomicsError::NotFound(m) => write!(f, "not found: {m}"),
            GenomicsError::InvalidParams(m) => write!(f, "invalid parameters: {m}"),
        }
    }
}

impl std::error::Error for GenomicsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GenomicsError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GenomicsError {
    fn from(e: std::io::Error) -> Self {
        GenomicsError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = GenomicsError::Format("truncated record".into());
        assert!(e.to_string().contains("truncated record"));
        let e = GenomicsError::InvalidBase('Z');
        assert!(e.to_string().contains('Z'));
    }

    #[test]
    fn io_error_round_trips_through_from() {
        let io = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof");
        let e: GenomicsError = io.into();
        assert!(matches!(e, GenomicsError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
